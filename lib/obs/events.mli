(** Structured event sink: one JSON object per record, written as JSONL.

    The ATPG drivers emit one record per fault-simulation pass and one per
    deterministically attempted fault, carrying the exact
    work/backtrack/decision accounting, so Tables 2-4 rows and Figure 3
    trajectories can be rebuilt offline from the file alone.  With no sink
    installed, {!emit} is a single word test.

    Domain safety: install/uninstall from the main domain only.  Under an
    active {!Capture} scope (i.e. inside a parallel Exec task), {!emit}
    buffers into the task's delta instead of the shared sink; deltas are
    appended in submission order by [Commit.apply], keeping the record
    order — and hence the JSONL file — bit-identical to a sequential
    run. *)

type sink

val create : unit -> sink
val install : sink -> unit
val uninstall : unit -> unit
val active : unit -> sink option
val enabled : unit -> bool

(** Append one record (an object built from [fields]) to the installed
    sink; no-op without one.  Call sites should guard expensive field
    construction with {!enabled}. *)
val emit : (string * Json.t) list -> unit

(** Like {!emit} with an already-built record. *)
val emit_json : Json.t -> unit

(** Append a task delta's buffered records to the installed sink in
    emission order; no-op without a sink.  Call only with no capture
    active on the current domain (use [Commit.apply]). *)
val apply_delta : Capture.t -> unit

(** Records in emission order. *)
val records : sink -> Json.t list

val num_records : sink -> int

(** One compact JSON document per line, emission order. *)
val to_lines : sink -> string list

(** Write {!to_lines} to [file]. *)
val write : sink -> string -> unit
