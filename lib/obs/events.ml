(* Structured event sink: one JSON object per record, written out as JSONL
   (one line per record).  The ATPG drivers emit one record per random/
   validation fault-simulation pass and one per deterministically attempted
   fault, carrying the exact work/backtrack/decision accounting — the
   paper's Tables 2-4 rows and Figure 3 trajectories can be rebuilt offline
   from the file alone (see DESIGN.md "Observability").

   Emission is guarded by [enabled]: with no sink installed the hot path
   pays one word test and builds nothing.

   Domain safety: the sink is installed/uninstalled from the main domain
   only.  A parallel task (running under a Capture scope) never mutates
   the sink — its records are buffered in the task's delta and appended by
   the submitting caller in submission order (Commit.apply), so the JSONL
   file of an N-domain run is byte-identical to the sequential one. *)

type sink = { mutable records : Json.t list; mutable n : int }

let current : sink option ref = ref None

let create () = { records = []; n = 0 }
let install s = current := Some s
let uninstall () = current := None
let active () = !current
let enabled () = !current <> None

let append s j =
  s.records <- j :: s.records;
  s.n <- s.n + 1

let emit_json j =
  match !current with
  | None -> ()
  | Some s ->
    (match Capture.current () with
     | Some d -> Capture.add_event d j
     | None -> append s j)

let emit fields = emit_json (Json.Obj fields)

(* Append a task delta's buffered records in emission order.  Only called
   with no capture active on the current domain (Commit.apply). *)
let apply_delta d =
  match !current with
  | None -> ()
  | Some s -> List.iter (append s) (Capture.events d)

let records s = List.rev s.records
let num_records s = s.n

(* records are stored most-recent-first; rev_map yields oldest-first *)
let to_lines s = List.rev_map Json.to_string s.records

let write s file =
  Fileio.write_atomic file (fun oc ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines s))
