(* Differential comparison of two instrumented runs, at three
   granularities:

     totals   — the headline work-unit delta (any two inputs);
     spans    — per-span work aggregation (manifests and Chrome traces);
     rows     — exact attribution of the delta to per-fault event records
                (event JSONL inputs) or per-record bench rows (bench
                JSON arrays), with new / vanished / status-changed rows
                called out.

   The reconciliation invariant is the load-bearing property: an event
   stream's records carry the complete work accounting (every gate
   evaluation and backtrack of the run appears in exactly one record —
   the JSONL<->stats identity test_obs.ml proves), so on event inputs the
   sum of per-row deltas must equal the total delta *exactly*.  [compute]
   checks this and reports [reconciled]; a [Some false] means a truncated
   or hand-edited stream, never rounding.

   Everything here is pure — callers read files and parse; this module
   classifies content, builds comparison sides, and diffs. *)

(* ------------------------------------------------------- input sniffing - *)

type input =
  | Manifest of Ledger.t
  | Events of Json.t list (* parsed JSONL records, file order *)
  | Bench of Json.t list  (* records of a bench JSON array *)
  | Chrome of Json.t      (* whole Chrome trace document *)

let input_kind_name = function
  | Manifest _ -> "manifest"
  | Events _ -> "events"
  | Bench _ -> "bench"
  | Chrome _ -> "chrome-trace"

(* JSONL: parse line by line, skipping blank lines. *)
let parse_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | line :: rest ->
      (match Json.parse line with
       | j -> go (j :: acc) rest
       | exception Json.Parse_error e -> Error e)
  in
  go [] lines

let classify_input text =
  match Json.parse text with
  | Json.Obj _ as j when Json.member "satpg_manifest" j <> None ->
    (match Ledger.of_json j with
     | Some m -> Ok (Manifest m)
     | None -> Error "manifest does not decode (corrupt or wrong version)")
  | Json.Obj _ as j when Json.member "traceEvents" j <> None -> Ok (Chrome j)
  | Json.Obj _ as j when Json.member "ev" j <> None ->
    Ok (Events [ j ]) (* single-record JSONL *)
  | Json.List records -> Ok (Bench records)
  | _ -> Error "unrecognized JSON shape (not a manifest, trace, or bench array)"
  | exception Json.Parse_error _ ->
    (* not one JSON document — try JSONL *)
    (match parse_jsonl text with
     | Ok records -> Ok (Events records)
     | Error e -> Error ("neither JSON nor JSONL: " ^ e))

(* ------------------------------------------------------ comparison sides - *)

type row_data = { units : int; status : string option }

type side = {
  label : string;
  manifest_id : string option;
  total : int option;          (* total work units, when the input has one *)
  exact : bool;                (* rows account for the total exactly *)
  spans : (string * int * int) list;
  rows : (string * row_data) list; (* attribution rows, input order *)
}

let int_field name j = Option.bind (Json.member name j) Json.to_int_opt
let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

(* Ordered accumulation: first-appearance order, units summed. *)
let add_row order tbl key units status =
  match Hashtbl.find_opt tbl key with
  | Some r ->
    r := { units = !r.units + units; status }
  | None ->
    order := key :: !order;
    Hashtbl.replace tbl key (ref { units; status })

let rows_of order tbl =
  List.rev_map (fun key -> (key, !(Hashtbl.find tbl key))) !order

let side_of_manifest ~label m =
  {
    label;
    manifest_id = Some (Ledger.id m);
    total = Some (Ledger.work_units m);
    exact = false;
    spans = Ledger.spans m;
    rows = [];
  }

(* Per-fault attribution from an event stream.  A "fault" record is one
   row keyed by the fault name; the per-pass records ("fault_sim" keyed
   by phase, "state_directory", anything future) aggregate into
   parenthesized pseudo-rows, so every work unit of the run lands in
   exactly one row and the rows sum to the stream's final running
   total. *)
let side_of_events ~label records =
  let order = ref [] and tbl = Hashtbl.create 256 in
  let last_after = ref None in
  List.iter
    (fun r ->
      let units =
        Option.value ~default:0 (int_field "work" r)
        + (50 * Option.value ~default:0 (int_field "backtracks" r))
      in
      (match int_field "work_units_after" r with
       | Some t -> last_after := Some t
       | None -> ());
      match str_field "ev" r with
      | Some "fault" ->
        let key =
          match str_field "fault" r with
          | Some f -> f
          | None ->
            Printf.sprintf "fault#%d"
              (Option.value ~default:(-1) (int_field "index" r))
        in
        add_row order tbl key units (str_field "status" r)
      | Some "fault_sim" ->
        let phase = Option.value ~default:"?" (str_field "phase" r) in
        add_row order tbl ("(fault-sim " ^ phase ^ ")") units None
      | Some ev -> add_row order tbl ("(" ^ ev ^ ")") units None
      | None -> add_row order tbl "(unknown record)" units None)
    records;
  let rows = rows_of order tbl in
  let sum = List.fold_left (fun a (_, d) -> a + d.units) 0 rows in
  {
    label;
    manifest_id = None;
    total = Some (Option.value ~default:sum !last_after);
    exact = true;
    spans = [];
    rows;
  }

(* Bench records: one row per (engine|mode, benchmark) cell, weighted by
   its work_units (records without one — e.g. reach records — weigh 0 but
   still diff by presence and status). *)
let side_of_bench ~label records =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let bench = Option.value ~default:"?" (str_field "benchmark" r) in
      let key =
        match str_field "engine" r, str_field "mode" r with
        | Some e, _ -> e ^ "/" ^ bench
        | None, Some m -> m ^ "/" ^ bench
        | None, None -> bench
      in
      let units = Option.value ~default:0 (int_field "work_units" r) in
      add_row order tbl key units None)
    records;
  let rows = rows_of order tbl in
  let sum = List.fold_left (fun a (_, d) -> a + d.units) 0 rows in
  { label; manifest_id = None; total = Some sum; exact = true; spans = []; rows }

(* Span aggregation of a raw Chrome trace, [Trace.durations]-style:
   balanced B/E pairs only, matched by name at the stack top. *)
let spans_of_chrome doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> []
  in
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  List.iter
    (fun e ->
      match str_field "ph" e, str_field "name" e, int_field "ts" e with
      | Some "B", Some name, Some ts -> stack := (name, ts) :: !stack
      | Some "E", Some name, Some ts ->
        (match !stack with
         | (top, ts0) :: rest when String.equal top name ->
           stack := rest;
           let c, t =
             Option.value ~default:(0, 0) (Hashtbl.find_opt totals name)
           in
           Hashtbl.replace totals name (c + 1, t + (ts - ts0))
         | _ -> ())
      | _ -> ())
    events;
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) totals []
  |> List.sort (fun (na, _, ta) (nb, _, tb) ->
         if ta <> tb then compare tb ta else String.compare na nb)

let side_of_chrome ~label doc =
  {
    label;
    manifest_id = None;
    total = None;
    exact = false;
    spans = spans_of_chrome doc;
    rows = [];
  }

let side_of_input ~label = function
  | Manifest m -> side_of_manifest ~label m
  | Events records -> side_of_events ~label records
  | Bench records -> side_of_bench ~label records
  | Chrome doc -> side_of_chrome ~label doc

let side_of_string ~label text =
  Result.map (side_of_input ~label) (classify_input text)

(* ------------------------------------------------------------- the diff - *)

type row = {
  key : string;
  a_units : int option;
  b_units : int option;
  delta : int;
  status_a : string option;
  status_b : string option;
}

type t = {
  a : side;
  b : side;
  total_delta : int option;
  spans : row list;
  rows : row list;
  new_keys : string list;
  vanished_keys : string list;
  status_changed : (string * string * string) list;
  attributed_delta : int option;
  reconciled : bool option;
}

(* Union of two keyed lists, preserving a's order then b's novel keys. *)
let union_keys a_keys b_keys =
  let seen = Hashtbl.create 64 in
  let keep k =
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.replace seen k ();
      true
    end
  in
  List.filter keep a_keys @ List.filter keep b_keys

let sort_rows rows =
  List.sort
    (fun x y ->
      let ax = abs x.delta and ay = abs y.delta in
      if ax <> ay then compare ay ax else String.compare x.key y.key)
    rows

let compute a b =
  let total_delta =
    match a.total, b.total with
    | Some ta, Some tb -> Some (tb - ta)
    | _ -> None
  in
  let span_rows =
    let find spans name =
      List.find_map
        (fun (n, _, t) -> if String.equal n name then Some t else None)
        spans
    in
    let keys =
      union_keys
        (List.map (fun (n, _, _) -> n) a.spans)
        (List.map (fun (n, _, _) -> n) b.spans)
    in
    sort_rows
      (List.map
         (fun key ->
           let ta = find a.spans key and tb = find b.spans key in
           {
             key;
             a_units = ta;
             b_units = tb;
             delta = Option.value ~default:0 tb - Option.value ~default:0 ta;
             status_a = None;
             status_b = None;
           })
         keys)
  in
  let rows, new_keys, vanished_keys, status_changed, attributed =
    if a.rows = [] && b.rows = [] then ([], [], [], [], None)
    else begin
      let tbl_a = Hashtbl.create 256 and tbl_b = Hashtbl.create 256 in
      List.iter (fun (k, d) -> Hashtbl.replace tbl_a k d) a.rows;
      List.iter (fun (k, d) -> Hashtbl.replace tbl_b k d) b.rows;
      let keys = union_keys (List.map fst a.rows) (List.map fst b.rows) in
      let rows =
        List.map
          (fun key ->
            let da = Hashtbl.find_opt tbl_a key
            and db = Hashtbl.find_opt tbl_b key in
            {
              key;
              a_units = Option.map (fun d -> d.units) da;
              b_units = Option.map (fun d -> d.units) db;
              delta =
                Option.fold ~none:0 ~some:(fun d -> d.units) db
                - Option.fold ~none:0 ~some:(fun d -> d.units) da;
              status_a = Option.bind da (fun d -> d.status);
              status_b = Option.bind db (fun d -> d.status);
            })
          keys
      in
      let new_keys =
        List.filter_map
          (fun r -> if r.a_units = None then Some r.key else None)
          rows
      in
      let vanished =
        List.filter_map
          (fun r -> if r.b_units = None then Some r.key else None)
          rows
      in
      let changed =
        List.filter_map
          (fun r ->
            match r.status_a, r.status_b with
            | Some sa, Some sb when not (String.equal sa sb) ->
              Some (r.key, sa, sb)
            | _ -> None)
          rows
      in
      let attributed = List.fold_left (fun acc r -> acc + r.delta) 0 rows in
      (sort_rows rows, new_keys, vanished, changed, Some attributed)
    end
  in
  let reconciled =
    match attributed, total_delta with
    | Some s, Some t when a.exact && b.exact -> Some (s = t)
    | _ -> None
  in
  {
    a;
    b;
    total_delta;
    spans = span_rows;
    rows;
    new_keys;
    vanished_keys;
    status_changed;
    attributed_delta = attributed;
    reconciled;
  }

let is_empty d =
  Option.value ~default:0 d.total_delta = 0
  && List.for_all (fun r -> r.delta = 0) d.spans
  && List.for_all (fun r -> r.delta = 0) d.rows
  && d.new_keys = [] && d.vanished_keys = [] && d.status_changed = []

(* Threshold gate: breach when side B's total exceeds side A's by more
   than [max_regress_pct] percent (exact integer arithmetic — 10% means
   strictly greater than ta * 1.10).  Improvements never breach. *)
let breach ~max_regress_pct d =
  match d.a.total, d.b.total with
  | Some ta, Some tb when ta >= 0 ->
    float_of_int (tb - ta) *. 100.0 > max_regress_pct *. float_of_int ta
  | _ -> false

(* -------------------------------------------------------------- reports - *)

let opt_int = function Some i -> Json.Int i | None -> Json.Null
let opt_str = function Some s -> Json.String s | None -> Json.Null

let row_json name r =
  Json.Obj
    ([
       (name, Json.String r.key);
       ("a", opt_int r.a_units);
       ("b", opt_int r.b_units);
       ("delta", Json.Int r.delta);
     ]
    @
    match r.status_a, r.status_b with
    | None, None -> []
    | sa, sb -> [ ("status_a", opt_str sa); ("status_b", opt_str sb) ])

let side_json s =
  Json.Obj
    [
      ("label", Json.String s.label);
      ("kind", Json.String (if s.rows <> [] then "attributable" else "totals"));
      ("manifest", opt_str s.manifest_id);
      ("total", opt_int s.total);
    ]

let to_json d =
  Json.Obj
    [
      ("a", side_json d.a);
      ("b", side_json d.b);
      ( "total",
        Json.Obj
          [
            ("a", opt_int d.a.total);
            ("b", opt_int d.b.total);
            ("delta", opt_int d.total_delta);
            ( "pct",
              match d.a.total, d.total_delta with
              | Some ta, Some delta when ta > 0 ->
                Json.Float (100.0 *. float_of_int delta /. float_of_int ta)
              | _ -> Json.Null );
          ] );
      ("empty", Json.Bool (is_empty d));
      ("attributed_delta", opt_int d.attributed_delta);
      ( "reconciled",
        match d.reconciled with Some b -> Json.Bool b | None -> Json.Null );
      ("spans", Json.List (List.map (row_json "span") d.spans));
      ("rows", Json.List (List.map (row_json "key") d.rows));
      ("new", Json.List (List.map (fun k -> Json.String k) d.new_keys));
      ( "vanished",
        Json.List (List.map (fun k -> Json.String k) d.vanished_keys) );
      ( "status_changed",
        Json.List
          (List.map
             (fun (k, sa, sb) ->
               Json.Obj
                 [
                   ("key", Json.String k);
                   ("a", Json.String sa);
                   ("b", Json.String sb);
                 ])
             d.status_changed) );
    ]

let str_opt = function Some i -> string_of_int i | None -> "-"

let pp_text ?(top = 20) ppf d =
  Format.fprintf ppf "diff: %s -> %s@." d.a.label d.b.label;
  (match d.a.manifest_id, d.b.manifest_id with
   | Some ia, Some ib -> Format.fprintf ppf "  manifests     %s -> %s@." ia ib
   | _ -> ());
  Format.fprintf ppf "  total units   %s -> %s" (str_opt d.a.total)
    (str_opt d.b.total);
  (match d.total_delta, d.a.total with
   | Some delta, Some ta when ta > 0 ->
     Format.fprintf ppf "  (%+d, %+.2f%%)@." delta
       (100.0 *. float_of_int delta /. float_of_int ta)
   | Some delta, _ -> Format.fprintf ppf "  (%+d)@." delta
   | None, _ -> Format.fprintf ppf "@.");
  (match d.reconciled with
   | Some true ->
     Format.fprintf ppf "  attribution   exact: per-row deltas sum to the total delta@."
   | Some false ->
     Format.fprintf ppf
       "  attribution   BROKEN: rows sum to %s, total delta is %s (truncated \
        stream?)@."
       (str_opt d.attributed_delta) (str_opt d.total_delta)
   | None -> ());
  if d.spans <> [] then begin
    Format.fprintf ppf "  spans (by |delta|):@.";
    Format.fprintf ppf "    %-32s %12s %12s %12s@." "span" "a" "b" "delta";
    List.iteri
      (fun i r ->
        if i < top then
          Format.fprintf ppf "    %-32s %12s %12s %+12d@." r.key
            (str_opt r.a_units) (str_opt r.b_units) r.delta)
      d.spans
  end;
  if d.rows <> [] then begin
    let shown = min top (List.length d.rows) in
    Format.fprintf ppf "  attribution rows (top %d of %d, by |delta|):@." shown
      (List.length d.rows);
    Format.fprintf ppf "    %-28s %12s %12s %12s  %s@." "row" "a" "b" "delta" "status";
    List.iteri
      (fun i r ->
        if i < top then
          Format.fprintf ppf "    %-28s %12s %12s %+12d  %s@." r.key
            (str_opt r.a_units) (str_opt r.b_units) r.delta
            (match r.status_a, r.status_b with
             | Some sa, Some sb when not (String.equal sa sb) ->
               sa ^ " -> " ^ sb
             | Some s, Some _ -> s
             | Some s, None -> s ^ " -> (gone)"
             | None, Some s -> "(new) " ^ s
             | None, None -> ""))
      d.rows
  end;
  if d.new_keys <> [] then
    Format.fprintf ppf "  new rows      %d@." (List.length d.new_keys);
  if d.vanished_keys <> [] then
    Format.fprintf ppf "  vanished rows %d@." (List.length d.vanished_keys);
  if d.status_changed <> [] then
    Format.fprintf ppf "  status changes %d@." (List.length d.status_changed);
  if is_empty d then Format.fprintf ppf "  runs are identical@."

(* ------------------------------------------------------- bench history - *)

(* One series per (suite, engine|mode, benchmark) cell of the history
   file, in first-appearance order; each point keeps its work units,
   manifest id and timestamp in file (= append) order.  Malformed lines
   are counted, not fatal: the history is append-only and long-lived, so
   one bad line must not hide the rest. *)
type history_point = { units : int; manifest : string; ts : int }

let history_of_lines lines =
  let order = ref [] and tbl = Hashtbl.create 16 and bad = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.parse line with
        | exception Json.Parse_error _ -> incr bad
        | r ->
          let bench = str_field "benchmark" r in
          (match bench with
           | None -> incr bad
           | Some bench ->
             let suite =
               Option.value ~default:"?" (str_field "suite" r)
             in
             let cell =
               match str_field "engine" r, str_field "mode" r with
               | Some e, _ -> e
               | None, Some m -> m
               | None, None -> "?"
             in
             let series = Printf.sprintf "%s/%s/%s" suite cell bench in
             let point =
               {
                 units = Option.value ~default:0 (int_field "work_units" r);
                 manifest =
                   Option.value ~default:"" (str_field "manifest" r);
                 ts = Option.value ~default:0 (int_field "ts" r);
               }
             in
             (match Hashtbl.find_opt tbl series with
              | Some ps -> ps := point :: !ps
              | None ->
                order := series :: !order;
                Hashtbl.replace tbl series (ref [ point ]))))
    lines;
  ( List.rev_map (fun s -> (s, List.rev !(Hashtbl.find tbl s))) !order,
    !bad )

let history_json series =
  Json.List
    (List.map
       (fun (name, points) ->
         let units = List.map (fun p -> p.units) points in
         let last_delta =
           match List.rev units with
           | b :: a :: _ -> Json.Int (b - a)
           | _ -> Json.Null
         in
         Json.Obj
           [
             ("series", Json.String name);
             ("points", Json.Int (List.length points));
             ("work_units", Json.List (List.map (fun u -> Json.Int u) units));
             ("last_delta", last_delta);
             ( "manifests",
               Json.List
                 (List.map (fun p -> Json.String p.manifest) points) );
             ("ts", Json.List (List.map (fun p -> Json.Int p.ts) points));
           ])
       series)

let pp_history ppf (series, bad) =
  if series = [] then Format.fprintf ppf "history: empty@."
  else
    List.iter
      (fun (name, points) ->
        let units = List.map (fun p -> p.units) points in
        Format.fprintf ppf "%-36s %3d points  [%s]" name (List.length points)
          (String.concat " " (List.map string_of_int units));
        (match List.rev units with
         | b :: a :: _ -> Format.fprintf ppf "  last delta %+d@." (b - a)
         | _ -> Format.fprintf ppf "@."))
      series;
  if bad > 0 then Format.fprintf ppf "(%d malformed line(s) skipped)@." bad
