(** Run-provenance manifests (the "run ledger").

    A manifest names one instrumented run: the computation (tool,
    command, circuit + canonical structural hash), the configuration that
    shaped it (config fingerprint, engine, job count, raw [SATPG_BUDGET]
    value), and what it measured (total work units, the metrics snapshot,
    per-span work totals, and a digest of the per-fault event stream).
    The {!id} is an FNV-1a digest of the canonical JSON encoding of the
    body, so manifests are content-addressed: the same run reproduces a
    byte-identical manifest with an equal id, and nothing host- or
    time-dependent (wall clock, hostname, paths) is recorded. *)

type t

(** Encoding version, stored as the ["satpg_manifest"] header field. *)
val version : int

(** Build a manifest and compute its {!id}.  [spans] is
    [Trace.durations] output (deterministically sorted);
    [event_lines] the event sink's {!Events.to_lines} (its digest and
    count are stored, not the lines); [budget] the raw [SATPG_BUDGET]
    string ([""] when unset). *)
val make :
  tool:string ->
  command:string ->
  ?circuit:string ->
  ?circuit_hash:string ->
  ?config_fp:string ->
  ?engine:string ->
  jobs:int ->
  budget:string ->
  work_units:int ->
  metrics:Json.t ->
  spans:(string * int * int) list ->
  event_lines:string list ->
  unit ->
  t

val id : t -> string
val work_units : t -> int
val config_fp : t -> string
val circuit_hash : t -> string
val spans : t -> (string * int * int) list

(** Total, deterministic encoding: fixed field order, the {!id} last. *)
val to_json : t -> Json.t

(** Corruption-tolerant decode: [None] on any shape mismatch, version
    mismatch, or an [id] that does not recompute from the body. *)
val of_json : Json.t -> t option

(** {!to_json} rendered compactly plus a trailing newline — the exact
    bytes {!write} persists. *)
val to_string : t -> string

(** Write {!to_string} to [file] atomically (temp file + rename). *)
val write : t -> string -> unit

(** FNV-1a 64 hex digest of a string (exposed for event-stream digests
    and tests). *)
val digest_string : string -> string

(** Digest of JSONL lines, equal to {!digest_string} of the file content
    (each line contributes its bytes plus the newline). *)
val digest_lines : string list -> string
