(** PODEM over the iterative-array model, in two phases.

    {b Phase A} (excitation + propagation): decisions on the primary
    inputs of every frame and the free present state of frame 0 — exactly
    the structural-ATPG blindness the reproduced paper studies.  Success
    is a D/D' on a primary output inside the window; a fault is
    {e exhausted} only after the whole space is refuted, and that proves
    redundancy only if no (even potential) escape through the last
    frame's next state was ever seen.

    {b Phase B} (state justification): the frame-0 requirement cube is
    regressed one good-machine frame at a time until compatible with the
    power-up state, with a reset-first probe per level and an optional
    simulation-seeded state directory; SEST-style learning caches failed
    cubes and successful prefixes across faults. *)

exception Out_of_budget

type var =
  | Pi of int * int  (** (frame, input index) *)
  | Ps of int        (** frame-0 state bit (dff position) *)

type decision = { var : var; mutable value : bool; mutable flipped : bool }

type phase_a_result = Detected | Exhausted of { escape_seen : bool }

type learn_state = {
  failed_cubes : (string, unit) Hashtbl.t;
  proven_prefix : (string, Sim.Vectors.sequence) Hashtbl.t;
}

val new_learn_state : unit -> learn_state

val assign : Frames.t -> var -> bool -> unit
val unassign : Frames.t -> var -> unit

(** Walk an objective (frame, node, value) down to an unassigned
    pseudo-input decision; [None] when every path is already assigned. *)
val backtrace : Frames.t -> int -> int -> bool -> (var * bool) option

(** Excitation/propagation search for one fault.  With [slearn], every
    dead end is analyzed into a blocking clause and the learned store is
    consulted before each branch (see {!module:Learn}); without it the
    search is bit-identical to the seed engine.
    @raise Out_of_budget when the per-fault budget runs out. *)
val phase_a :
  ?slearn:Learn.t ->
  Frames.t -> Fsim.Fault.t -> Types.config -> Types.stats -> phase_a_result

(** Does the cube's specified bits match the packed state key? *)
val cube_matches_code : Sim.Value3.t array -> Sim.Statekey.t -> bool

(** Is the cube compatible with the circuit's power-up state? *)
val compatible_with_init : Netlist.Node.t -> Sim.Value3.t array -> bool

(** Justify a frame-0 state cube on the good machine; returns the input
    prefix (power-up onward) reaching a compatible state, or [None].
    [directory] is the simulation-seeded (state, prefix) list; [guide]
    is the optional SCOAP [(cc0, cc1)] controllability cost table.
    [slearn] adds the cross-fault structural-learning store: complete
    refutations are generalized to their read set and consulted (with
    subset matching) before any cube is searched.
    @raise Out_of_budget when the budget runs out. *)
val justify :
  ?directory:(Sim.Statekey.t * Sim.Vectors.sequence) list ->
  ?guide:int array * int array ->
  ?slearn:Learn.t ->
  Netlist.Node.t ->
  required:Sim.Value3.t array ->
  cfg:Types.config ->
  stats:Types.stats ->
  learn:learn_state option ->
  Sim.Vectors.sequence option
