(** Attest/TDX-style engine: simulation-based directed search (the CONTEST
    family).

    No branch-and-bound at all: starting from the power-up state,
    candidate vectors (bit-flips of the previous vector, fresh random
    vectors, a reset pulse when available) are scored by simulating the
    good and faulty machines side by side; the vector moving the fault
    effect closest to a primary output (by register-graph distance) is
    appended.  Detection is exact — it {e is} simulation — and undetected
    faults are simply given up on, so fault efficiency equals fault
    coverage (as in the paper's Table 3 rows where %FE = %FC). *)

(** Distance (in register hops) from each DFF to a primary output; used
    as the propagation cost.  Exposed for benches. *)
val dff_distance_to_po : Netlist.Node.t -> int array

(** Run the engine on a circuit.  [config]'s [backtrack_limit] bounds the
    per-fault search length ([max_steps = backtrack_limit / 4]);
    [total_work_limit] bounds the whole run.  [prune] as in
    {!Run.generate}: accepted faults are marked [Proved_untestable]
    upfront and never searched. *)
val generate :
  ?config:Types.config ->
  ?seed:int ->
  ?prune:(Fsim.Fault.t -> bool) ->
  Netlist.Node.t ->
  Types.result
