(** Five-valued (0, 1, X, D, D') iterative-array model: the circuit
    unrolled over [k] time frames, good and faulty machines simulated side
    by side with the fault injected in every frame.  "D at a node" means
    good = 1 / faulty = 0 there in that frame.

    Pseudo-inputs (the PODEM decision variables): the primary inputs of
    every frame, and the present state of frame 0. *)

type t = {
  circuit : Netlist.Node.t;
  tape : Sim.Tape.t;
  (** flat levelized instruction tape the cone evaluation runs on *)
  fault : Fsim.Fault.t option;
  dff_pos : int array;               (** node id -> dff position, or -1 *)
  k : int;                           (** number of frames *)
  good : Sim.Value3.t array array;   (** [frame][node] *)
  faulty : Sim.Value3.t array array;
  pi : Sim.Value3.t array array;     (** [frame][pi index]; assignable *)
  ps0 : Sim.Value3.t array;          (** [dff position]; assignable *)
  frontier : int list array;         (** per frame: D-frontier gate ids *)
  dfront : bool array;               (** per-node scratch for frontier
                                         collection; always all-false
                                         between [imply] calls *)
  po_driver : bool array;            (** per node: drives a primary output *)
  guide : (int array * int array) option;
  (** optional SCOAP [(cc0, cc1)] per node id; when present, PODEM's
      backtrace picks X inputs by controllability cost instead of pin
      order (cheapest when one input suffices, hardest first when all
      inputs are required) *)
  stats : Types.stats;
}

val create :
  ?fault:Fsim.Fault.t ->
  ?guide:int array * int array ->
  Netlist.Node.t -> frames:int -> stats:Types.stats -> t

(** Faulty-machine read of gate pin [pin] (honors branch-fault injection). *)
val read_faulty : t -> int -> int -> int -> int -> Sim.Value3.t

(** Is (good, faulty) a fault effect (both binary, different)? *)
val is_d : Sim.Value3.t -> Sim.Value3.t -> bool

(** Re-simulate frames [from..k-1] from the current pseudo-inputs
    (assignments are the only state; implication is re-evaluation). *)
val imply : ?from:int -> t -> unit

(** A D/D' sits on some primary output of some frame. *)
val detected : t -> bool

(** A D/D' reaches a next-state input of the last frame (a longer window
    might still detect the fault: exhaustion is then not a proof). *)
val d_escapes : t -> bool

(** D-frontier as (frame, gate) pairs, earliest frames first. *)
val d_frontier : t -> (int * int) list

type x_path = {
  reaches_po : bool;  (** the effect can still reach a PO in-window *)
  escapes : bool;     (** ... or leave through the last frame's next state *)
}

(** X-path analysis from the current D-frontier; both the classic PODEM
    prune and the soundness guard for redundancy claims. *)
val x_path : t -> x_path

(** Good-machine value of the fault site in frame 0 (excitation test). *)
val site_good_value : t -> Sim.Value3.t

(** Frame-0 state requirement as a printable cube signature. *)
val ps0_signature : t -> string
