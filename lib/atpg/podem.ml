(* PODEM over the iterative-array model, in two phases:

   Phase A (excitation + propagation): decision variables are the primary
   inputs of every frame and the present state of frame 0 (treated as free
   pseudo-inputs, exactly the structural-ATPG blindness the paper studies).
   Success is a D/D' on some primary output within the frame window.

   Phase B (state justification): the frame-0 state cube required by the
   phase-A solution is justified backwards one frame at a time on the good
   machine, until the requirement is compatible with the power-up state.
   With SEST-style learning enabled, failed requirement cubes are cached and
   pruned, and successful justification sequences are reused.

   A fault is declared redundant only on sound grounds: phase A exhausted
   the whole search space and no D ever escaped into the last frame's next
   state (so no longer window could succeed either). *)

exception Out_of_budget

(* Global hot-path counters for `satpg --metrics`: plain O(1) increments
   beside the per-run [Types.stats] bookkeeping (which stays the source of
   truth for work units). *)
let m_decisions = Obs.Metrics.counter "atpg.podem.decisions"
let m_backtracks = Obs.Metrics.counter "atpg.podem.backtracks"
let m_conflicts = Obs.Metrics.counter "atpg.podem.conflicts"
let m_learn_failed = Obs.Metrics.counter "atpg.learn.failed_cube_hits"
let m_learn_prefix = Obs.Metrics.counter "atpg.learn.prefix_reuses"
let m_directory = Obs.Metrics.counter "atpg.justify.directory_hits"

type var = Pi of int * int | Ps of int

type decision = { var : var; mutable value : bool; mutable flipped : bool }

type phase_a_result =
  | Detected
  | Exhausted of { escape_seen : bool }

type learn_state = {
  failed_cubes : (string, unit) Hashtbl.t;
  proven_prefix : (string, Sim.Vectors.sequence) Hashtbl.t;
}

let new_learn_state () =
  { failed_cubes = Hashtbl.create 256; proven_prefix = Hashtbl.create 256 }

(* --- assignment helpers ---------------------------------------------------- *)

let assign fr var v =
  match var with
  | Pi (t, i) -> fr.Frames.pi.(t).(i) <- Sim.Value3.of_bool v
  | Ps j -> fr.Frames.ps0.(j) <- Sim.Value3.of_bool v

let unassign fr var =
  match var with
  | Pi (t, i) -> fr.Frames.pi.(t).(i) <- Sim.Value3.X
  | Ps j -> fr.Frames.ps0.(j) <- Sim.Value3.X

let reimply fr var =
  let from = match var with Pi (t, _) -> t | Ps _ -> 0 in
  Frames.imply ~from fr

(* --- backtrace -------------------------------------------------------------- *)

let gate_inverts = function
  | Netlist.Node.Nand | Netlist.Node.Nor | Netlist.Node.Not
  | Netlist.Node.Xnor -> true
  | Netlist.Node.And | Netlist.Node.Or | Netlist.Node.Buf | Netlist.Node.Xor
    -> false

let controlling = function
  | Netlist.Node.And | Netlist.Node.Nand -> Some false
  | Netlist.Node.Or | Netlist.Node.Nor -> Some true
  | Netlist.Node.Not | Netlist.Node.Buf | Netlist.Node.Xor | Netlist.Node.Xnor
    -> None

(* Pick an X-valued fanin pin of [nd], or -1.  Unguided: the first X in
   pin order (the historical behaviour).  With SCOAP guidance: when one
   input suffices ([choice]), the cheapest one to drive to [target];
   when all inputs must be set, the hardest first, so an infeasible
   requirement fails as early as possible. *)
let pick_x_input fr frame (nd : Netlist.Node.node) ~target ~choice =
  match fr.Frames.guide with
  | None ->
    let x_input = ref (-1) in
    Array.iteri
      (fun p s ->
        if !x_input < 0 && fr.Frames.good.(frame).(s) = Sim.Value3.X then
          x_input := p)
      nd.Netlist.Node.fanins;
    !x_input
  | Some (cc0, cc1) ->
    let cost s = if target then cc1.(s) else cc0.(s) in
    let best = ref (-1) and best_cost = ref 0 in
    Array.iteri
      (fun p s ->
        if fr.Frames.good.(frame).(s) = Sim.Value3.X then begin
          let k = cost s in
          if !best < 0 || (if choice then k < !best_cost else k > !best_cost)
          then begin
            best := p;
            best_cost := k
          end
        end)
      nd.Netlist.Node.fanins;
    !best

(* Walk an objective (frame, node, value) in the good machine down to an
   unassigned pseudo-input decision, or None if every path is assigned. *)
let backtrace fr frame node value =
  let c = fr.Frames.circuit in
  let rec go frame node value steps =
    if steps > 4000 then None
    else
      let nd = Netlist.Node.node c node in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Pi i ->
        if fr.Frames.pi.(frame).(i) = Sim.Value3.X then Some (Pi (frame, i), value)
        else None
      | Netlist.Node.Dff _ ->
        let pos = fr.Frames.dff_pos.(node) in
        if frame = 0 then
          if fr.Frames.ps0.(pos) = Sim.Value3.X then Some (Ps pos, value)
          else None
        else go (frame - 1) nd.Netlist.Node.fanins.(0) value (steps + 1)
      | Netlist.Node.Gate fn ->
        let inv = gate_inverts fn in
        let v_in = if inv then not value else value in
        (match fn with
         | Netlist.Node.Xor | Netlist.Node.Xnor ->
           let a = nd.Netlist.Node.fanins.(0)
           and b = nd.Netlist.Node.fanins.(1) in
           let va = fr.Frames.good.(frame).(a)
           and vb = fr.Frames.good.(frame).(b) in
           (match va, vb with
            | Sim.Value3.X, (Sim.Value3.Zero | Sim.Value3.One) ->
              let d = vb = Sim.Value3.One in
              go frame a (v_in <> d) (steps + 1)
            | (Sim.Value3.Zero | Sim.Value3.One), Sim.Value3.X ->
              let d = va = Sim.Value3.One in
              go frame b (v_in <> d) (steps + 1)
            | Sim.Value3.X, Sim.Value3.X -> go frame a v_in (steps + 1)
            | _ -> None)
         | Netlist.Node.And | Netlist.Node.Nand | Netlist.Node.Or
         | Netlist.Node.Nor | Netlist.Node.Not | Netlist.Node.Buf ->
           let ctrl = controlling fn in
           let target, choice =
             match ctrl with
             | None -> (v_in, true) (* Buf/Not chains *)
             | Some cv ->
               if v_in = cv then (cv, true) (* one controlling input suffices *)
               else (not cv, false) (* all inputs must be non-controlling *)
           in
           let pin = pick_x_input fr frame nd ~target ~choice in
           if pin < 0 then None
           else go frame nd.Netlist.Node.fanins.(pin) target (steps + 1))
  in
  go frame node value 0

(* --- phase A ----------------------------------------------------------------- *)

let check_budget (cfg : Types.config) stats =
  if stats.Types.work > cfg.Types.work_limit
     || stats.Types.backtracks > cfg.Types.backtrack_limit
  then raise Out_of_budget

let fault_source c (f : Fsim.Fault.t) =
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id -> id
  | Fsim.Fault.Pin { gate; pin } ->
    (Netlist.Node.node c gate).Netlist.Node.fanins.(pin)

(* Pick the next objective, or None when the current assignment is a dead
   end (must backtrack), or Some None when... encoded as variant: *)
type objective = Obj of int * int * bool | Dead_end | Success

let choose_objective fr (fault : Fsim.Fault.t) =
  if Frames.detected fr then Success
  else begin
    let c = fr.Frames.circuit in
    let src = fault_source c fault in
    match fr.Frames.good.(0).(src) with
    | Sim.Value3.X -> Obj (0, src, not fault.Fsim.Fault.stuck)
    | v when v = Sim.Value3.of_bool fault.Fsim.Fault.stuck -> Dead_end
    | _ ->
      (* excited; advance the D-frontier if the effect can still reach a PO *)
      (match Frames.d_frontier fr with
       | [] -> Dead_end
       | (frame, gate) :: _ when (Frames.x_path fr).Frames.reaches_po ->
         let nd = Netlist.Node.node c gate in
         let fn =
           match nd.Netlist.Node.kind with
           | Netlist.Node.Gate fn -> fn
           | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> assert false
         in
         (* set an X input to the gate's non-controlling value; to advance
            the frontier every X input must eventually be non-controlling,
            so guided selection takes the hardest first *)
         let nc =
           match controlling fn with Some cv -> not cv | None -> true
         in
         let pin = pick_x_input fr frame nd ~target:nc ~choice:false in
         if pin < 0 then Dead_end
         else Obj (frame, nd.Netlist.Node.fanins.(pin), nc)
       | _ :: _ -> Dead_end)
  end

let phase_a ?slearn fr (fault : Fsim.Fault.t) cfg stats =
  let site = Learn.anchor fault in
  let stack : decision list ref = ref [] in
  let escape_seen = ref false in
  let note_escape () =
    if not !escape_seen then begin
      if Frames.d_escapes fr then escape_seen := true
      else if (Frames.x_path fr).Frames.escapes then escape_seen := true
    end
  in
  let rec backtrack () =
    stats.Types.backtracks <- stats.Types.backtracks + 1;
    Obs.Metrics.incr m_backtracks;
    check_budget cfg stats;
    match !stack with
    | [] -> Exhausted { escape_seen = !escape_seen }
    | d :: rest ->
      if d.flipped then begin
        unassign fr d.var;
        reimply fr d.var;
        stack := rest;
        backtrack ()
      end
      else begin
        d.value <- not d.value;
        d.flipped <- true;
        assign fr d.var d.value;
        reimply fr d.var;
        note_escape ();
        search ()
      end
  and search () =
    check_budget cfg stats;
    (* consult the learned store before branching: a clause match proves
       the whole subtree under the current assignment fruitless (the
       escape accounting for this state already ran via [note_escape]
       right after the implication that produced it) *)
    let learned_prune =
      match slearn with
      | Some sl -> Learn.blocked sl ~site ~stats fr
      | None -> false
    in
    if learned_prune then backtrack ()
    else
    match choose_objective fr fault with
    | Success -> Detected
    | Dead_end ->
      Obs.Metrics.incr m_conflicts;
      (match slearn with
       | Some sl -> ignore (Learn.analyze sl ~site ~stats fr)
       | None -> ());
      backtrack ()
    | Obj (frame, node, v) ->
      (match backtrace fr frame node v with
       | None -> backtrack ()
       | Some (var, value) ->
         stats.Types.decisions <- stats.Types.decisions + 1;
         Obs.Metrics.incr m_decisions;
         let d = { var; value; flipped = false } in
         stack := d :: !stack;
         assign fr var value;
         reimply fr var;
         note_escape ();
         search ())
  in
  Frames.imply fr;
  note_escape ();
  search ()

(* --- phase B: backward justification ----------------------------------------- *)

let cube_signature cube =
  String.init (Array.length cube) (fun j -> Sim.Value3.to_char cube.(j))

let compatible_with_init c cube =
  let ok = ref true in
  Array.iteri
    (fun j id ->
      match cube.(j) with
      | Sim.Value3.X -> ()
      | v ->
        if v <> Sim.Value3.of_bool (Netlist.Node.dff_init c id) then ok := false)
    c.Netlist.Node.dffs;
  !ok

(* Justify [required] (a Value3 cube over the DFFs) on the good machine;
   returns the input vectors (power-up onward) reaching a compatible state.
   Depth-first over frames with per-frame PODEM. *)
let cube_matches_code cube code =
  let ok = ref true in
  Array.iteri
    (fun j v ->
      match v with
      | Sim.Value3.X -> ()
      | v ->
        if v <> Sim.Value3.of_bool (Sim.Statekey.bit code j) then ok := false)
    cube;
  !ok

let justify ?(directory = []) ?guide ?slearn c ~required ~cfg ~stats
    ~(learn : learn_state option) =
  let nbits = Array.length required in
  let visited = Hashtbl.create 64 in
  (* simulation-seeded shortcut: a state already visited by the random phase
     that satisfies the cube is justified by its recorded input prefix *)
  let lookup_directory cube =
    let rec find = function
      | [] -> None
      | (code, prefix) :: rest ->
        if cube_matches_code cube code then Some prefix else find rest
    in
    find directory
  in
  (* [complete] tracks whether the refutation below this point hit any
     cutoff (depth limit, visited table, backtrace step cap, an
     incompletely refuted cached cube): only cutoff-free failures are
     unreachability proofs, and only those may generalize into
     subset-matching clauses (Learn).  Pure bookkeeping: no branch of the
     original search depends on it. *)
  let rec solve required depth ~complete =
    check_budget cfg stats;
    let sg = cube_signature required in
    Hashtbl.replace stats.Types.state_cubes sg ();
    if compatible_with_init c required then Some []
    else if depth >= cfg.Types.max_frames_bwd then begin
      complete := false;
      None
    end
    else if Hashtbl.mem visited sg then begin
      complete := false;
      None
    end
    else
      match lookup_directory required with
      | Some prefix ->
        Obs.Metrics.incr m_directory;
        Some prefix
      | None ->
    let struct_cut =
      match slearn with
      | None -> None
      | Some sl ->
        (match Learn.failed_exact sl sg with
         | Some was_complete ->
           Obs.Metrics.incr m_learn_failed;
           if not was_complete then complete := false;
           Some `Fail
         | None ->
           if Learn.cube_blocked sl ~stats required then Some `Fail
           else (
             match Learn.proven_prefix sl sg with
             | Some p -> Some (`Prefix p)
             | None -> None))
    in
    (match struct_cut with
    | Some `Fail -> None
    | Some (`Prefix p) -> Some p
    | None ->
    begin
      match learn with
      | Some l when Hashtbl.mem l.failed_cubes sg ->
        Obs.Metrics.incr m_learn_failed;
        complete := false;
        None
      | _ ->
        (match learn with
         | Some l ->
           (match Hashtbl.find_opt l.proven_prefix sg with
            | Some prefix ->
              Obs.Metrics.incr m_learn_prefix;
              Some prefix
            | None -> solve_frame required depth sg ~complete)
         | None -> solve_frame required depth sg ~complete)
    end)
  and solve_frame required depth sg ~complete =
    Hashtbl.replace visited sg ();
    let read = Array.make nbits false in
    let sub = ref true in
    match attempt_frame required depth ~from_init:true ~read ~complete:(ref true)
    with
    | Some r -> Some r
    | None ->
      (match
         attempt_frame required depth ~from_init:false ~read ~complete:sub
       with
      | Some r -> Some r
      | None ->
        (* the free-previous-state attempt subsumes the reset probe, so
           its completeness alone decides whether this failure proves
           unreachability *)
        (match slearn with
         | Some sl ->
           Learn.note_failed_cube sl ~complete:!sub ~read ~stats required
         | None -> ());
        if not !sub then complete := false;
        None)

  (* One backward frame.  [from_init] pins the previous state to the
     power-up state (the reset-first probe: on densely encoded machines most
     requirement cubes are a short hop from reset, and this prunes the
     regression enormously); otherwise the previous state is free and the
     search recurses on whatever cube it needs. *)
  and attempt_frame required depth ~from_init ~read ~complete =
    let local_backtracks = ref 0 in
    let probe_limit = 60 in
    let sg = cube_signature required in
    let fr = Frames.create ?guide c ~frames:1 ~stats in
    if from_init then
      Array.iteri
        (fun j id ->
          fr.Frames.ps0.(j) <-
            Sim.Value3.of_bool (Netlist.Node.dff_init c id))
        c.Netlist.Node.dffs;
    let stack : decision list ref = ref [] in
    (* objectives: next-state bits equal to the required cube *)
    let objective () =
      (* Success when every required NS bit matches; Dead_end on mismatch *)
      let result = ref Success in
      (try
         Array.iteri
           (fun j id ->
             match required.(j) with
             | Sim.Value3.X -> ()
             | want ->
               read.(j) <- true;
               let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
               let got = fr.Frames.good.(0).(data) in
               if got = Sim.Value3.X then begin
                 result :=
                   Obj (0, data, want = Sim.Value3.One);
                 raise Exit
               end
               else if got <> want then begin
                 result := Dead_end;
                 raise Exit
               end)
           c.Netlist.Node.dffs
       with Exit -> ());
      !result
    in
    let rec backtrack () =
      stats.Types.backtracks <- stats.Types.backtracks + 1;
      Obs.Metrics.incr m_backtracks;
      incr local_backtracks;
      check_budget cfg stats;
      if from_init && !local_backtracks > probe_limit then begin
        complete := false;
        None
      end
      else
        match !stack with
        | [] -> None
        | d :: rest ->
          if d.flipped then begin
            unassign fr d.var;
            reimply fr d.var;
            stack := rest;
            backtrack ()
          end
          else begin
            d.value <- not d.value;
            d.flipped <- true;
            assign fr d.var d.value;
            reimply fr d.var;
            search ()
          end
    and search () =
      check_budget cfg stats;
      match objective () with
      | Dead_end ->
        Obs.Metrics.incr m_conflicts;
        backtrack ()
      | Success ->
        let vector () =
          Array.map
            (fun v ->
              match Sim.Value3.to_bool_opt v with
              | Some b -> b
              | None -> false)
            fr.Frames.pi.(0)
        in
        if from_init then begin
          (* previous state is the power-up state: done *)
          let seq = [ vector () ] in
          (match learn with
           | Some l -> Hashtbl.replace l.proven_prefix sg seq
           | None -> ());
          (match slearn with
           | Some sl -> Learn.note_proven_prefix sl sg seq
           | None -> ());
          Some seq
        end
        else begin
          (* recurse on the previous state requirement *)
          let new_required = Array.copy fr.Frames.ps0 in
          match solve new_required (depth + 1) ~complete with
          | Some prefix ->
            let seq = prefix @ [ vector () ] in
            (match learn with
             | Some l -> Hashtbl.replace l.proven_prefix sg seq
             | None -> ());
            (match slearn with
             | Some sl -> Learn.note_proven_prefix sl sg seq
             | None -> ());
            Some seq
          | None -> backtrack ()
        end
      | Obj (frame, node, v) ->
        (match backtrace fr frame node v with
         | None ->
           (* could be a genuine all-assigned dead end or the backtrace
              step cap: indistinguishable here, so count it against
              completeness *)
           complete := false;
           backtrack ()
         | Some (var, value) ->
           stats.Types.decisions <- stats.Types.decisions + 1;
           Obs.Metrics.incr m_decisions;
           let d = { var; value; flipped = false } in
           stack := d :: !stack;
           assign fr var value;
           reimply fr var;
           search ())
    in
    Frames.imply fr;
    let r = search () in
    (match r, learn with
     | None, Some l when not from_init -> Hashtbl.replace l.failed_cubes sg ()
     | _ -> ());
    r
  in
  ignore nbits;
  solve required 0 ~complete:(ref true)
