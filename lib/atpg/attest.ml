(* Attest/TDX-style engine: simulation-based directed search (the CONTEST
   family).  No branch-and-bound at all: starting from the power-up state,
   candidate vectors are scored by simulating the good and faulty machines
   side by side, and the vector that moves the fault effect closest to a
   primary output is appended.  Detection is exact (it is simulation);
   undetected faults are simply given up on, so fault efficiency tracks
   fault coverage (as in the paper's Table 3). *)

(* distance (in register hops) from each DFF to a primary output *)
let dff_distance_to_po c =
  let ndffs = Netlist.Node.num_dffs c in
  let dff_index = Array.make (Netlist.Node.num_nodes c) (-1) in
  Array.iteri (fun i id -> dff_index.(id) <- i) c.Netlist.Node.dffs;
  let po_set = Hashtbl.create 17 in
  Array.iter (fun (_, id) -> Hashtbl.replace po_set id ()) c.Netlist.Node.pos;
  (* per DFF: which DFFs and whether POs are combinationally reachable *)
  let succs = Array.make ndffs [] in
  let feeds_po = Array.make ndffs false in
  Array.iteri
    (fun i id ->
      let cone = Netlist.Stats.comb_fanout_cone c id in
      List.iter
        (fun nid ->
          if Hashtbl.mem po_set nid then feeds_po.(i) <- true;
          let j = dff_index.(nid) in
          if j >= 0 && j <> i then succs.(i) <- j :: succs.(i))
        cone)
    c.Netlist.Node.dffs;
  let dist = Array.make ndffs max_int in
  let queue = Queue.create () in
  Array.iteri
    (fun i fp ->
      if fp then begin
        dist.(i) <- 0;
        Queue.add i queue
      end)
    feeds_po;
  (* reverse BFS *)
  let preds = Array.make ndffs [] in
  Array.iteri (fun i l -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) l) succs;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if dist.(i) > dist.(j) + 1 then begin
          dist.(i) <- dist.(j) + 1;
          Queue.add i queue
        end)
      preds.(j)
  done;
  dist

type search_state = {
  good : Sim.Parallel.t;
  faulty : Sim.Parallel.t;
}

let snapshot s =
  (Sim.Parallel.get_state_words s.good, Sim.Parallel.get_state_words s.faulty)

let restore s (g, f) =
  Sim.Parallel.set_state_words s.good g;
  Sim.Parallel.set_state_words s.faulty f

(* Apply one vector (eval only); returns (po_diff, cost). *)
let score c dist s v =
  Sim.Parallel.set_input_broadcast s.good v;
  Sim.Parallel.set_input_broadcast s.faulty v;
  Sim.Parallel.eval_comb s.good;
  Sim.Parallel.eval_comb s.faulty;
  let po_diff = ref false in
  Array.iter
    (fun (_, id) ->
      if (Sim.Parallel.node_word s.good id land 1)
         <> (Sim.Parallel.node_word s.faulty id land 1)
      then po_diff := true)
    c.Netlist.Node.pos;
  if !po_diff then (true, -1000)
  else begin
    (* corrupted next-state bits *)
    Sim.Parallel.tick s.good;
    Sim.Parallel.tick s.faulty;
    let best = ref max_int in
    let corrupted = ref 0 in
    Array.iteri
      (fun j id ->
        if (Sim.Parallel.node_word s.good id land 1)
           <> (Sim.Parallel.node_word s.faulty id land 1)
        then begin
          incr corrupted;
          if dist.(j) < !best then best := dist.(j)
        end)
      c.Netlist.Node.dffs;
    if !corrupted > 0 then (false, (10 * !best) - !corrupted)
    else begin
      (* not excited: reward internal divergence *)
      let diverging = ref 0 in
      Array.iter
        (fun id ->
          let nd = Netlist.Node.node c id in
          match nd.Netlist.Node.kind with
          | Netlist.Node.Gate _ ->
            if (Sim.Parallel.node_word s.good id land 1)
               <> (Sim.Parallel.node_word s.faulty id land 1)
            then incr diverging
          | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
        c.Netlist.Node.order;
      (false, 100_000 - !diverging)
    end
  end

let search_fault c dist fault ~rng ~max_steps ~candidates_per_step ~stats =
  let s =
    { good = Sim.Parallel.create c; faulty = Sim.Parallel.create c }
  in
  Fsim.Fault.inject s.faulty fault ~lane:0;
  Sim.Parallel.reset s.good;
  Sim.Parallel.reset s.faulty;
  let npi = Netlist.Node.num_pis c in
  let reset_pi = Run.find_reset_pi c in
  let seq = ref [] in
  let prev = ref (Array.make npi false) in
  let detected = ref false in
  let steps = ref 0 in
  while (not !detected) && !steps < max_steps do
    incr steps;
    let saved = snapshot s in
    let best_v = ref None and best_cost = ref max_int in
    for cand = 0 to candidates_per_step - 1 do
      let v =
        if cand = 0 then Array.copy !prev
        else if cand <= 2 then begin
          let v = Array.copy !prev in
          let bit = Random.State.int rng npi in
          v.(bit) <- not v.(bit);
          v
        end
        else if cand = 3 && reset_pi <> None then begin
          let v = Array.make npi false in
          (match reset_pi with Some i -> v.(i) <- true | None -> ());
          v
        end
        else Sim.Vectors.random_vector rng npi
      in
      restore s saved;
      let po_diff, cost = score c dist s v in
      stats.Types.work <- stats.Types.work + (2 * Netlist.Node.num_gates c);
      let cost = if po_diff then -1000 else cost in
      if cost < !best_cost then begin
        best_cost := cost;
        best_v := Some v
      end
    done;
    match !best_v with
    | None -> steps := max_steps
    | Some v ->
      restore s saved;
      let po_diff, _ = score c dist s v in
      stats.Types.work <- stats.Types.work + (2 * Netlist.Node.num_gates c);
      (* note: score already ticked when not detected *)
      seq := v :: !seq;
      prev := v;
      if po_diff then detected := true
  done;
  if !detected then Some (List.rev !seq) else None

let generate ?(config = Types.scaled_config ()) ?(seed = 3) ?prune c =
  (* directed simulation has no decision tree, so structural learning
     (DESIGN §12) cannot apply; drop the flag here so the run is
     self-evidently identical whichever way the caller inherited it *)
  let cfg = { config with Types.struct_learn = false } in
  let faults = Fsim.Collapse.list c in
  let n = Array.length faults in
  let status = Array.make n Fsim.Fault.Untested in
  let detected = Array.make n false in
  let stats = Types.new_stats () in
  let test_sets = ref [] in
  let rng = Random.State.make [| seed; 0x44 |] in
  let dist = dff_distance_to_po c in
  let resolved = ref 0 in
  Run.apply_prune ?prune c ~engine:"attest" ~faults ~status ~detected ~stats
    ~resolved;
  let apply_fault_sim ~phase seq =
    let run = Fsim.Engine.simulate ~skip:detected c faults seq in
    let work = List.length seq * Netlist.Node.num_gates c in
    stats.Types.work <- stats.Types.work + work;
    Run.note_run_states stats run;
    let dropped = ref [] in
    Array.iteri
      (fun i d ->
        if d && not detected.(i) then begin
          detected.(i) <- true;
          status.(i) <- Fsim.Fault.Detected;
          incr resolved;
          dropped := i :: !dropped
        end)
      run.Fsim.Engine.detected;
    let dropped = List.rev !dropped in
    Obs.Trace.set_time (Types.work_units stats);
    Run.emit_fault_sim_event ~engine:"attest" ~phase ~stats
      ~resolved:!resolved ~vectors:(List.length seq)
      ~sim_cycles:run.Fsim.Engine.sim_cycles ~work dropped;
    dropped
  in
  Obs.Trace.span "atpg.random_phase" (fun () ->
      List.iter
        (fun seq ->
          if apply_fault_sim ~phase:"random" seq <> [] then
            test_sets := seq :: !test_sets)
        (Run.random_sequences c ~seed ~count:3 ~length:120));
  let max_steps = max 20 (cfg.Types.backtrack_limit / 4) in
  let attempt_one i fault =
    (* per-fault stats so the event carries this fault's exact cost; the
       directed search has no backtracking, only simulation work *)
    let fstats = Types.new_stats () in
    let outcome, drop_credit =
      match
        search_fault c dist fault ~rng ~max_steps ~candidates_per_step:8
          ~stats:fstats
      with
      | Some seq ->
        Run.merge_stats ~into:stats fstats;
        Obs.Trace.set_time (Types.work_units stats);
        let dropped = apply_fault_sim ~phase:"validate" seq in
        if dropped <> [] then test_sets := seq :: !test_sets;
        if not detected.(i) then status.(i) <- Fsim.Fault.Aborted;
        ( Types.Tested seq,
          List.length dropped - (if List.mem i dropped then 1 else 0) )
      | None ->
        Run.merge_stats ~into:stats fstats;
        Obs.Trace.set_time (Types.work_units stats);
        status.(i) <- Fsim.Fault.Aborted;
        (Types.Gave_up, 0)
    in
    Run.emit_fault_event c ~engine:"attest" ~index:i ~fault ~fstats
      ~outcome:(Run.outcome_string outcome) ~status:status.(i) ~drop_credit
      ~stats ~resolved:!resolved
  in
  Obs.Trace.span "atpg.deterministic_phase" (fun () ->
      try
        Array.iteri
          (fun i fault ->
            if status.(i) = Fsim.Fault.Untested then begin
              if Types.work_units stats > cfg.Types.total_work_limit then
                raise Exit;
              if Obs.Trace.enabled () then
                Obs.Trace.span
                  ~args:
                    [ ("fault", Obs.Json.String (Fsim.Fault.to_string c fault)) ]
                  "atpg.fault"
                  (fun () -> attempt_one i fault)
              else attempt_one i fault
            end)
          faults
      with Exit -> ());
  Array.iteri
    (fun i s -> if s = Fsim.Fault.Untested then status.(i) <- Fsim.Fault.Aborted)
    status;
  Types.summarize faults status (List.rev !test_sets) stats
