(* Five-valued (0, 1, X, D, D') iterative-array model: the circuit is
   unrolled over k time frames; good and faulty machines are simulated side
   by side with the fault injected in every frame.  D at a node means
   good=1/faulty=0 at that node in that frame.

   Pseudo-inputs: the primary inputs of every frame and the present state of
   frame 0.  Later frames take their present state from the previous
   frame's next-state values (good and faulty tracked separately). *)

type t = {
  circuit : Netlist.Node.t;
  fault : Fsim.Fault.t option;
  dff_pos : int array;               (* node id -> dff position, or -1 *)
  k : int;
  good : Sim.Value3.t array array;   (* [frame][node] *)
  faulty : Sim.Value3.t array array;
  pi : Sim.Value3.t array array;     (* [frame][pi index], assignable *)
  ps0 : Sim.Value3.t array;          (* [dff position], assignable *)
  frontier : int list array;         (* per frame: D-frontier gate ids *)
  po_driver : bool array;            (* per node: drives a primary output *)
  guide : (int array * int array) option;
  (* optional SCOAP (cc0, cc1) per node, used by backtrace input choice *)
  stats : Types.stats;
}

(* global frame-expansion counter for `satpg --metrics` *)
let m_frames = Obs.Metrics.counter "atpg.frames.expanded"

let create ?fault ?guide circuit ~frames ~stats =
  stats.Types.frames <- stats.Types.frames + frames;
  Obs.Metrics.add m_frames frames;
  let n = Netlist.Node.num_nodes circuit in
  let dff_pos = Array.make n (-1) in
  Array.iteri (fun j id -> dff_pos.(id) <- j) circuit.Netlist.Node.dffs;
  {
    circuit;
    fault;
    dff_pos;
    k = frames;
    good = Array.init frames (fun _ -> Array.make n Sim.Value3.X);
    faulty = Array.init frames (fun _ -> Array.make n Sim.Value3.X);
    pi = Array.init frames (fun _ ->
        Array.make (Netlist.Node.num_pis circuit) Sim.Value3.X);
    ps0 = Array.make (Netlist.Node.num_dffs circuit) Sim.Value3.X;
    frontier = Array.make frames [];
    po_driver =
      (let po = Array.make n false in
       Array.iter (fun (_, id) -> po.(id) <- true) circuit.Netlist.Node.pos;
       po);
    guide;
    stats;
  }

(* faulty-machine pin read with branch-fault override *)
let read_faulty t frame gate pin src =
  match t.fault with
  | Some { Fsim.Fault.site = Fsim.Fault.Pin { gate = fg; pin = fp }; stuck }
    when fg = gate && fp = pin ->
    Sim.Value3.of_bool stuck
  | Some _ | None -> t.faulty.(frame).(src)

let rec is_d g f =
  match g, f with
  | Sim.Value3.One, Sim.Value3.Zero | Sim.Value3.Zero, Sim.Value3.One -> true
  | _ -> false

and eval_frame t frame =
  t.frontier.(frame) <- [];
  let c = t.circuit in
  let g = t.good.(frame) and f = t.faulty.(frame) in
  (* primary inputs *)
  Array.iteri
    (fun i id ->
      g.(id) <- t.pi.(frame).(i);
      f.(id) <- t.pi.(frame).(i))
    c.Netlist.Node.pis;
  (* present state *)
  Array.iteri
    (fun j id ->
      if frame = 0 then begin
        g.(id) <- t.ps0.(j);
        f.(id) <- t.ps0.(j)
      end
      else begin
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        g.(id) <- t.good.(frame - 1).(data);
        (* faulty present state: previous frame's faulty next-state, with a
           DFF-pin fault override *)
        f.(id) <- read_faulty t (frame - 1) id 0 data
      end)
    c.Netlist.Node.dffs;
  (* stem fault on a PI or DFF output *)
  (match t.fault with
   | Some { Fsim.Fault.site = Fsim.Fault.Stem s; stuck } ->
     (match (Netlist.Node.node c s).Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ ->
        f.(s) <- Sim.Value3.of_bool stuck
      | Netlist.Node.Gate _ -> ())
   | Some { Fsim.Fault.site = Fsim.Fault.Pin _; _ } | None -> ());
  (* combinational logic *)
  Array.iter
    (fun id ->
      let nd = Netlist.Node.node c id in
      match nd.Netlist.Node.kind with
      | Netlist.Node.Gate fn ->
        t.stats.Types.work <- t.stats.Types.work + 1;
        let gin = Array.map (fun s -> g.(s)) nd.Netlist.Node.fanins in
        g.(id) <- Sim.Value3.eval_gate fn gin;
        let fin =
          Array.mapi
            (fun pin s -> read_faulty t frame id pin s)
            nd.Netlist.Node.fanins
        in
        let fv = Sim.Value3.eval_gate fn fin in
        let fv =
          match t.fault with
          | Some { Fsim.Fault.site = Fsim.Fault.Stem s; stuck } when s = id ->
            Sim.Value3.of_bool stuck
          | Some _ | None -> fv
        in
        f.(id) <- fv;
        (* D-frontier bookkeeping: output X, some input D *)
        if g.(id) = Sim.Value3.X || fv = Sim.Value3.X then begin
          let has_d = ref false in
          Array.iteri
            (fun pin s ->
              if is_d g.(s) (read_faulty t frame id pin s) then has_d := true)
            nd.Netlist.Node.fanins;
          if !has_d then t.frontier.(frame) <- id :: t.frontier.(frame)
        end
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ -> ())
    c.Netlist.Node.order

let imply ?(from = 0) t =
  for frame = from to t.k - 1 do
    eval_frame t frame
  done

let detected t =
  let c = t.circuit in
  let hit = ref false in
  for frame = 0 to t.k - 1 do
    Array.iter
      (fun (_, id) ->
        if is_d t.good.(frame).(id) t.faulty.(frame).(id) then hit := true)
      c.Netlist.Node.pos
  done;
  !hit

(* Does any D reach a next-state (DFF data) in the last frame?  If so, more
   frames might detect the fault: exhaustion is not a redundancy proof. *)
let d_escapes t =
  let c = t.circuit in
  let last = t.k - 1 in
  Array.exists
    (fun id ->
      let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
      is_d t.good.(last).(data) (read_faulty t last id 0 data))
    c.Netlist.Node.dffs

(* D-frontier: gates whose output is X (in either machine) with a D on some
   input, listed as (frame, gate id), earliest frames first.  Collected
   incrementally during frame evaluation. *)
let d_frontier t =
  let acc = ref [] in
  for frame = t.k - 1 downto 0 do
    List.iter (fun id -> acc := (frame, id) :: !acc) t.frontier.(frame)
  done;
  !acc

(* X-path analysis from the D-frontier: can the fault effect still reach a
   primary output inside the window (through X-valued nodes), and can it
   escape through the last frame's next state?  Soundness of the redundancy
   claim relies on [escapes]: exhaustion only proves redundancy if no
   potential escape was ever seen. *)
type x_path = { reaches_po : bool; escapes : bool }

let x_path t =
  let c = t.circuit in
  let n = Netlist.Node.num_nodes c in
  let visited = Array.make (t.k * n) false in
  let reaches_po = ref false in
  let escapes = ref false in
  let is_x frame id =
    t.good.(frame).(id) = Sim.Value3.X || t.faulty.(frame).(id) = Sim.Value3.X
  in
  let rec go frame id =
    let key = (frame * n) + id in
    if not visited.(key) then begin
      visited.(key) <- true;
      t.stats.Types.work <- t.stats.Types.work + 1;
      if t.po_driver.(id) then reaches_po := true;
      if not !reaches_po then
        Array.iter
          (fun s ->
            match (Netlist.Node.node c s).Netlist.Node.kind with
            | Netlist.Node.Gate _ -> if is_x frame s then go frame s
            | Netlist.Node.Dff _ ->
              if frame + 1 >= t.k then escapes := true
              else if is_x (frame + 1) s then go (frame + 1) s
            | Netlist.Node.Pi _ -> ())
          c.Netlist.Node.fanouts.(id)
    end
  in
  (try
     for frame = 0 to t.k - 1 do
       List.iter
         (fun id ->
           go frame id;
           if !reaches_po then raise Exit)
         t.frontier.(frame)
     done
   with Exit -> ());
  (* a D already sitting on a PO or escaping is handled by [detected] and
     [d_escapes]; X-path covers the potential future *)
  { reaches_po = !reaches_po; escapes = !escapes }

(* Good-machine value of the fault site in frame 0 (for excitation). *)
let site_good_value t =
  match t.fault with
  | None -> Sim.Value3.X
  | Some f ->
    (match f.Fsim.Fault.site with
     | Fsim.Fault.Stem id -> t.good.(0).(id)
     | Fsim.Fault.Pin { gate; pin } ->
       t.good.(0).((Netlist.Node.node t.circuit gate).Netlist.Node.fanins.(pin)))

(* Required present-state cube of frame 0 as a printable signature. *)
let ps0_signature t =
  String.init (Array.length t.ps0) (fun j -> Sim.Value3.to_char t.ps0.(j))
