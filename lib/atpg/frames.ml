(* Five-valued (0, 1, X, D, D') iterative-array model: the circuit is
   unrolled over k time frames; good and faulty machines are simulated side
   by side with the fault injected in every frame.  D at a node means
   good=1/faulty=0 at that node in that frame.

   Pseudo-inputs: the primary inputs of every frame and the present state of
   frame 0.  Later frames take their present state from the previous
   frame's next-state values (good and faulty tracked separately). *)

type t = {
  circuit : Netlist.Node.t;
  tape : Sim.Tape.t;                 (* flat levelized instruction tape *)
  fault : Fsim.Fault.t option;
  dff_pos : int array;               (* node id -> dff position, or -1 *)
  k : int;
  good : Sim.Value3.t array array;   (* [frame][node] *)
  faulty : Sim.Value3.t array array;
  pi : Sim.Value3.t array array;     (* [frame][pi index], assignable *)
  ps0 : Sim.Value3.t array;          (* [dff position], assignable *)
  frontier : int list array;         (* per frame: D-frontier gate ids *)
  dfront : bool array;               (* per node scratch: frontier flag *)
  po_driver : bool array;            (* per node: drives a primary output *)
  guide : (int array * int array) option;
  (* optional SCOAP (cc0, cc1) per node, used by backtrace input choice *)
  stats : Types.stats;
}

(* global frame-expansion counter for `satpg --metrics` *)
let m_frames = Obs.Metrics.counter "atpg.frames.expanded"

let create ?fault ?guide circuit ~frames ~stats =
  stats.Types.frames <- stats.Types.frames + frames;
  Obs.Metrics.add m_frames frames;
  let n = Netlist.Node.num_nodes circuit in
  let dff_pos = Array.make n (-1) in
  Array.iteri (fun j id -> dff_pos.(id) <- j) circuit.Netlist.Node.dffs;
  {
    circuit;
    tape = Sim.Tape.compile circuit;
    fault;
    dff_pos;
    k = frames;
    good = Array.init frames (fun _ -> Array.make n Sim.Value3.X);
    faulty = Array.init frames (fun _ -> Array.make n Sim.Value3.X);
    pi = Array.init frames (fun _ ->
        Array.make (Netlist.Node.num_pis circuit) Sim.Value3.X);
    ps0 = Array.make (Netlist.Node.num_dffs circuit) Sim.Value3.X;
    frontier = Array.make frames [];
    dfront = Array.make n false;
    po_driver =
      (let po = Array.make n false in
       Array.iter (fun (_, id) -> po.(id) <- true) circuit.Netlist.Node.pos;
       po);
    guide;
    stats;
  }

(* faulty-machine pin read with branch-fault override *)
let read_faulty t frame gate pin src =
  match t.fault with
  | Some { Fsim.Fault.site = Fsim.Fault.Pin { gate = fg; pin = fp }; stuck }
    when fg = gate && fp = pin ->
    Sim.Value3.of_bool stuck
  | Some _ | None -> t.faulty.(frame).(src)

let rec is_d g f =
  match g, f with
  | Sim.Value3.One, Sim.Value3.Zero | Sim.Value3.Zero, Sim.Value3.One -> true
  | _ -> false

and eval_frame t frame =
  t.frontier.(frame) <- [];
  let c = t.circuit in
  let g = t.good.(frame) and f = t.faulty.(frame) in
  (* primary inputs *)
  Array.iteri
    (fun i id ->
      g.(id) <- t.pi.(frame).(i);
      f.(id) <- t.pi.(frame).(i))
    c.Netlist.Node.pis;
  (* present state *)
  Array.iteri
    (fun j id ->
      if frame = 0 then begin
        g.(id) <- t.ps0.(j);
        f.(id) <- t.ps0.(j)
      end
      else begin
        let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
        g.(id) <- t.good.(frame - 1).(data);
        (* faulty present state: previous frame's faulty next-state, with a
           DFF-pin fault override *)
        f.(id) <- read_faulty t (frame - 1) id 0 data
      end)
    c.Netlist.Node.dffs;
  (* stem fault on a PI or DFF output *)
  (match t.fault with
   | Some { Fsim.Fault.site = Fsim.Fault.Stem s; stuck } ->
     (match (Netlist.Node.node c s).Netlist.Node.kind with
      | Netlist.Node.Pi _ | Netlist.Node.Dff _ ->
        f.(s) <- Sim.Value3.of_bool stuck
      | Netlist.Node.Gate _ -> ())
   | Some { Fsim.Fault.site = Fsim.Fault.Pin _; _ } | None -> ());
  (* Combinational logic, swept over the flat instruction tape: one
     linear walk of dense arrays, no node records, no per-gate fanin
     allocation.  Values are order-independent under levelization; the
     D-frontier is assembled afterwards in original topological order
     (via [topo_slot]) so the collected list — and hence every PODEM
     objective choice downstream — is identical to the node-order walk
     this replaces. *)
  let tp = t.tape in
  let op = tp.Sim.Tape.op
  and gid = tp.Sim.Tape.node_of_slot
  and base = tp.Sim.Tape.fanin_base
  and fan = tp.Sim.Tape.fanin in
  (* fault tests hoisted out of the sweep *)
  let fstem, fstem_v, fpin_gate, fpin_pin, fpin_v =
    match t.fault with
    | Some { Fsim.Fault.site = Fsim.Fault.Stem s; stuck } ->
      (s, Sim.Value3.of_bool stuck, -1, -1, Sim.Value3.X)
    | Some { Fsim.Fault.site = Fsim.Fault.Pin { gate; pin }; stuck } ->
      (-1, Sim.Value3.X, gate, pin, Sim.Value3.of_bool stuck)
    | None -> (-1, Sim.Value3.X, -1, -1, Sim.Value3.X)
  in
  let num_gates = tp.Sim.Tape.num_gates in
  let any_frontier = ref false in
  for s = 0 to num_gates - 1 do
    t.stats.Types.work <- t.stats.Types.work + 1;
    let id = Array.unsafe_get gid s in
    let b = Array.unsafe_get base s in
    let e = Array.unsafe_get base (s + 1) in
    (* good machine: fold the fanin slice directly *)
    let gv =
      match Array.unsafe_get op s with
      | 0 -> g.(fan.(b))
      | 1 -> Sim.Value3.v_not g.(fan.(b))
      | (2 | 3) as o ->
        let acc = ref g.(fan.(b)) in
        for p = b + 1 to e - 1 do
          acc := Sim.Value3.v_and !acc g.(fan.(p))
        done;
        if o = 2 then !acc else Sim.Value3.v_not !acc
      | (4 | 5) as o ->
        let acc = ref g.(fan.(b)) in
        for p = b + 1 to e - 1 do
          acc := Sim.Value3.v_or !acc g.(fan.(p))
        done;
        if o = 4 then !acc else Sim.Value3.v_not !acc
      | 6 -> Sim.Value3.v_xor g.(fan.(b)) g.(fan.(b + 1))
      | _ -> Sim.Value3.v_not (Sim.Value3.v_xor g.(fan.(b)) g.(fan.(b + 1)))
    in
    g.(id) <- gv;
    (* faulty machine: same fold, with the branch-fault pin override *)
    let fpin p =
      if id = fpin_gate && p - b = fpin_pin then fpin_v else f.(fan.(p))
    in
    let fv =
      match Array.unsafe_get op s with
      | 0 -> fpin b
      | 1 -> Sim.Value3.v_not (fpin b)
      | (2 | 3) as o ->
        let acc = ref (fpin b) in
        for p = b + 1 to e - 1 do
          acc := Sim.Value3.v_and !acc (fpin p)
        done;
        if o = 2 then !acc else Sim.Value3.v_not !acc
      | (4 | 5) as o ->
        let acc = ref (fpin b) in
        for p = b + 1 to e - 1 do
          acc := Sim.Value3.v_or !acc (fpin p)
        done;
        if o = 4 then !acc else Sim.Value3.v_not !acc
      | 6 -> Sim.Value3.v_xor (fpin b) (fpin (b + 1))
      | _ -> Sim.Value3.v_not (Sim.Value3.v_xor (fpin b) (fpin (b + 1)))
    in
    let fv = if id = fstem then fstem_v else fv in
    f.(id) <- fv;
    (* D-frontier bookkeeping: output X, some input D *)
    if gv = Sim.Value3.X || fv = Sim.Value3.X then begin
      let has_d = ref false in
      for p = b to e - 1 do
        if is_d g.(fan.(p)) (fpin p) then has_d := true
      done;
      if !has_d then begin
        t.dfront.(id) <- true;
        any_frontier := true
      end
    end
  done;
  (* re-list the frontier in topological-walk order (see above) *)
  if !any_frontier then
    Array.iter
      (fun s ->
        let id = gid.(s) in
        if t.dfront.(id) then begin
          t.dfront.(id) <- false;
          t.frontier.(frame) <- id :: t.frontier.(frame)
        end)
      tp.Sim.Tape.topo_slot

let imply ?(from = 0) t =
  for frame = from to t.k - 1 do
    eval_frame t frame
  done

let detected t =
  let c = t.circuit in
  let hit = ref false in
  for frame = 0 to t.k - 1 do
    Array.iter
      (fun (_, id) ->
        if is_d t.good.(frame).(id) t.faulty.(frame).(id) then hit := true)
      c.Netlist.Node.pos
  done;
  !hit

(* Does any D reach a next-state (DFF data) in the last frame?  If so, more
   frames might detect the fault: exhaustion is not a redundancy proof. *)
let d_escapes t =
  let c = t.circuit in
  let last = t.k - 1 in
  Array.exists
    (fun id ->
      let data = (Netlist.Node.node c id).Netlist.Node.fanins.(0) in
      is_d t.good.(last).(data) (read_faulty t last id 0 data))
    c.Netlist.Node.dffs

(* D-frontier: gates whose output is X (in either machine) with a D on some
   input, listed as (frame, gate id), earliest frames first.  Collected
   incrementally during frame evaluation. *)
let d_frontier t =
  let acc = ref [] in
  for frame = t.k - 1 downto 0 do
    List.iter (fun id -> acc := (frame, id) :: !acc) t.frontier.(frame)
  done;
  !acc

(* X-path analysis from the D-frontier: can the fault effect still reach a
   primary output inside the window (through X-valued nodes), and can it
   escape through the last frame's next state?  Soundness of the redundancy
   claim relies on [escapes]: exhaustion only proves redundancy if no
   potential escape was ever seen. *)
type x_path = { reaches_po : bool; escapes : bool }

let x_path t =
  let c = t.circuit in
  let n = Netlist.Node.num_nodes c in
  let visited = Array.make (t.k * n) false in
  let reaches_po = ref false in
  let escapes = ref false in
  let is_x frame id =
    t.good.(frame).(id) = Sim.Value3.X || t.faulty.(frame).(id) = Sim.Value3.X
  in
  let rec go frame id =
    let key = (frame * n) + id in
    if not visited.(key) then begin
      visited.(key) <- true;
      t.stats.Types.work <- t.stats.Types.work + 1;
      if t.po_driver.(id) then reaches_po := true;
      if not !reaches_po then
        Array.iter
          (fun s ->
            match (Netlist.Node.node c s).Netlist.Node.kind with
            | Netlist.Node.Gate _ -> if is_x frame s then go frame s
            | Netlist.Node.Dff _ ->
              if frame + 1 >= t.k then escapes := true
              else if is_x (frame + 1) s then go (frame + 1) s
            | Netlist.Node.Pi _ -> ())
          c.Netlist.Node.fanouts.(id)
    end
  in
  (try
     for frame = 0 to t.k - 1 do
       List.iter
         (fun id ->
           go frame id;
           if !reaches_po then raise Exit)
         t.frontier.(frame)
     done
   with Exit -> ());
  (* a D already sitting on a PO or escaping is handled by [detected] and
     [d_escapes]; X-path covers the potential future *)
  { reaches_po = !reaches_po; escapes = !escapes }

(* Good-machine value of the fault site in frame 0 (for excitation). *)
let site_good_value t =
  match t.fault with
  | None -> Sim.Value3.X
  | Some f ->
    (match f.Fsim.Fault.site with
     | Fsim.Fault.Stem id -> t.good.(0).(id)
     | Fsim.Fault.Pin { gate; pin } ->
       t.good.(0).((Netlist.Node.node t.circuit gate).Netlist.Node.fanins.(pin)))

(* Required present-state cube of frame 0 as a printable signature. *)
let ps0_signature t =
  String.init (Array.length t.ps0) (fun j -> Sim.Value3.to_char t.ps0.(j))
