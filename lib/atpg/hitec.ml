(* HITEC-style engine: time-frame PODEM with backward state justification,
   fault-simulation dropping, no cross-fault state learning. *)

let config () =
  Types.scaled_config ~base:{ Types.default_config with learn = false } ()

let generate ?config:(cfg = config ()) ?seed ?guide ?prune c =
  Run.generate ~config:cfg ?seed ~engine:"hitec" ?guide ?prune c
