(* SEST-style engine: the same PODEM core as Hitec plus dynamic state
   learning — requirement cubes proven unjustifiable are cached and pruned
   across faults, and successful justification sequences are reused (the
   decomposition-equivalence learning family of Chen & Bushnell). *)

let config () =
  Types.scaled_config ~base:{ Types.default_config with learn = true } ()

let generate ?config:(cfg = config ()) ?seed ?guide ?prune c =
  Run.generate ~config:cfg ?seed ~engine:"sest" ?guide ?prune c
