(** Conflict-driven structural learning for the time-frame PODEM engines
    (ROADMAP item 3, after "Conflict-driven Structural Learning Towards
    Higher Coverage Rate in ATPG", arXiv 2303.02290).

    {b Phase A (propagation conflicts).}  When the search hits a dead end
    — the D-frontier died or no X-path reaches a primary output — the
    implication state recorded in the five-valued frame arrays is
    analyzed: walk the potential-D cone of the fault site across the
    whole window, stopping at every node whose good and faulty values are
    already determinate and equal.  Those boundary nodes are {e walls}:
    three-valued refinement is monotone, so a determinate node can never
    become a D later in the subtree, and the cone closure beyond the
    walls is purely structural.  If the closure reaches no primary
    output, the wall assignments form a sound blocking clause of
    [(line, relative frame, value)] literals: {e whenever} these lines
    carry these values, no refinement can detect a fault anchored at this
    site within the window.  Clauses are keyed by the anchor node of the
    fault site — shared by both stuck-at polarities and every
    equivalence-class member manifesting at that node — and literals are
    identified by the tape IR's [topo_slot], so learning composes with
    the PR 8 tape backend bit-identically when off.

    {b Phase B (justification refutations).}  A frame-backward
    justification search that fails {e completely} — no depth cutoff,
    probe cutoff, visited-table hit or budget abort anywhere in its
    subtree — is an unreachability proof for its requirement cube.  The
    search only ever examined the cube bits in its read set, so the
    restriction of the cube to that read set is an equally refuted,
    strictly more general clause: any future requirement that refines it
    is unjustifiable and is pruned without a search.  Good-machine
    justification is fault-independent, so this store is shared across
    all faults of the run.

    Every store consultation and conflict analysis is charged to the
    caller's {!Types.stats} work counter, so learn-on work units remain
    an honest, machine-independent account. *)

type t

(** One blocking-clause literal: a line (identified by its stable tape
    key), a relative time frame, and the determinate value both machines
    must carry for the clause to apply. *)
type literal = { key : int; frame : int; value : bool }

val create : Netlist.Node.t -> t

(** Stable per-line key: the tape [topo_slot] for gates, then primary
    inputs, then state (DFF) outputs.  Total over all node ids. *)
val key_of_node : t -> int -> int

(** The clause-store anchor of a fault: the node where good and faulty
    machines first diverge (stem node, or the faulted gate for pin
    faults). *)
val anchor : Fsim.Fault.t -> int

(** Analyze the current implication state of [fr] as a conflict for the
    fault anchored at [site]; on success the derived clause is stored
    (deduplicated, capped) and returned.  [None] when the potential-D
    cone still reaches a primary output, when the clause is too long to
    be worth keeping, or when it is already known. *)
val analyze :
  t -> site:int -> stats:Types.stats -> Frames.t -> literal array option

(** Consult the store before branching: does some learned clause of
    [site] match the current implication state of [fr] (every literal
    determinate-equal at its frame)?  A match proves the whole subtree
    fruitless. *)
val blocked : t -> site:int -> stats:Types.stats -> Frames.t -> bool

(** Record a failed justification cube.  [complete] marks a refutation
    whose subtree hit no cutoff of any kind; only those generalize:
    the cube restricted to [read] (the bit indices the failed search
    actually examined) is stored as a subset-matching clause. *)
val note_failed_cube :
  t ->
  complete:bool ->
  read:bool array ->
  stats:Types.stats ->
  Sim.Value3.t array ->
  unit

(** Was this exact cube signature already refuted?  Returns the recorded
    completeness of that refutation, or [None] if unknown. *)
val failed_exact : t -> string -> bool option

(** Does some stored generalized clause subsume [cube] (every literal of
    the clause constrained identically in [cube])?  A match refutes the
    cube without a search. *)
val cube_blocked : t -> stats:Types.stats -> Sim.Value3.t array -> bool

(** Cached justification prefix for an exact cube signature, if one was
    recorded by {!note_proven_prefix}. *)
val proven_prefix : t -> string -> Sim.Vectors.sequence option

val note_proven_prefix : t -> string -> Sim.Vectors.sequence -> unit

(** (stored phase-A clauses, stored literals, stored phase-B clauses) *)
val sizes : t -> int * int * int
