(** SEST-style engine: the {!Hitec} PODEM core plus dynamic state
    learning — requirement cubes proven unjustifiable are cached and
    pruned across faults, and successful justification prefixes are
    reused (the decomposition-equivalence learning family of Chen &
    Bushnell). *)

val config : unit -> Types.config

val generate :
  ?config:Types.config ->
  ?seed:int ->
  ?guide:int array * int array ->
  ?prune:(Fsim.Fault.t -> bool) ->
  Netlist.Node.t ->
  Types.result
