(** Per-circuit ATPG driver shared by the HITEC- and SEST-style engines.

    1. {e random phase}: a few random sequences are fault-simulated with
       fault dropping, and the good-machine states they visit are recorded
       (with the input prefix reaching each) into a justification
       directory — on densely encoded machines this visits nearly the
       whole valid set, on sparsely encoded (retimed) machines a sliver,
       which is precisely the asymmetry the reproduced paper studies;
    2. {e deterministic phase}: time-frame PODEM plus backward state
       justification per remaining fault; every produced test is validated
       by fault simulation (ground truth) and used to drop other faults.

    Sound redundancy only: a fault is Redundant when phase A exhausted the
    search space and the fault effect never (even potentially) escaped the
    frame window. *)

(** Index of the PI literally named "reset", if any. *)
val find_reset_pi : Netlist.Node.t -> int option

(** Seeded random sequences; the reset line (when present) is pulsed with
    low probability. *)
val random_sequences :
  Netlist.Node.t -> seed:int -> count:int -> length:int ->
  Sim.Vectors.sequence list

val merge_stats : into:Types.stats -> Types.stats -> unit
val note_run_states : Types.stats -> Fsim.Engine.run -> unit

(** {1 Observability} — structured events shared by the engines.  All
    emission is guarded by {!Obs.Events.enabled}; results are bit-identical
    with or without an installed sink. *)

(** ["tested"], ["redundant"] or ["aborted"]. *)
val outcome_string : Types.fault_outcome -> string

(** One ["fault_sim"] record: a fault-dropping simulation pass of
    [vectors] vectors costing [work] gate evaluations, newly dropping the
    given fault indices.  [sim_cycles] is the deterministic count of
    faulty-machine cycles the engine actually simulated (drop-limited, so
    at most [vectors] per live batch); the sum over all ["fault_sim"]
    events equals the final ["fsim.vectors"] counter. *)
val emit_fault_sim_event :
  engine:string -> phase:string -> stats:Types.stats -> resolved:int ->
  vectors:int -> sim_cycles:int -> work:int -> int list -> unit

(** One ["fault"] record: the per-fault terminal line carrying the exact
    work/backtrack/decision/frame accounting of the attempt ([fstats]),
    the outcome, the post-validation status, and the number of {e other}
    faults dropped by the produced test ([drop_credit]). *)
val emit_fault_event :
  Netlist.Node.t -> engine:string -> index:int -> fault:Fsim.Fault.t ->
  fstats:Types.stats -> outcome:string -> status:Fsim.Fault.status ->
  drop_credit:int -> stats:Types.stats -> resolved:int -> unit

(** The state directory harvested from simulating [sequences]:
    (state key, input prefix reaching it) per first visit. *)
val state_directory :
  Netlist.Node.t -> Sim.Vectors.sequence list ->
  (Sim.Statekey.t * Sim.Vectors.sequence) list

(** Pre-engine pruning shared by the drivers: mark every fault [prune]
    accepts as [Proved_untestable]/resolved before any budget is spent
    (one "fault" event per pruned fault keeps event-stream replays
    complete).  No-op when [prune] is [None]. *)
val apply_prune :
  ?prune:(Fsim.Fault.t -> bool) ->
  Netlist.Node.t ->
  engine:string ->
  faults:Fsim.Fault.t array ->
  status:Fsim.Fault.status array ->
  detected:bool array ->
  stats:Types.stats ->
  resolved:int ref ->
  unit

(** Deterministic attempt on one fault (exposed for tests/benches).
    [guide] is the optional SCOAP [(cc0, cc1)] cost table steering
    PODEM's backtrace input choice; [slearn] the optional cross-fault
    structural-learning store (see {!module:Learn}). *)
val attempt_fault :
  ?directory:(Sim.Statekey.t * Sim.Vectors.sequence) list ->
  ?guide:int array * int array ->
  ?slearn:Learn.t ->
  Netlist.Node.t ->
  Fsim.Fault.t ->
  Types.config ->
  Types.stats ->
  Podem.learn_state option ->
  Types.fault_outcome

(** Run the whole flow on a circuit.  [guide] as in {!attempt_fault};
    omitted (the default) the engine behaves exactly as before.  [engine]
    labels the emitted observability records (default ["sest"] when
    [config.learn], else ["hitec"]).  [prune] (typically
    [Analysis.Untest.prune]) marks accepted faults [Proved_untestable]
    upfront — they are skipped by every phase and count towards fault
    efficiency but not coverage. *)
val generate :
  ?config:Types.config ->
  ?seed:int ->
  ?random_sequences_count:int ->
  ?random_sequence_length:int ->
  ?engine:string ->
  ?guide:int array * int array ->
  ?prune:(Fsim.Fault.t -> bool) ->
  Netlist.Node.t ->
  Types.result
