(* Conflict-driven structural learning (see learn.mli for the soundness
   argument).  One store per ATPG run, shared across every fault of the
   run: phase-A blocking clauses are keyed by the fault's anchor node
   (both polarities and same-site equivalence-class members share), the
   phase-B failed-cube clauses are good-machine facts and therefore
   global.  All mutation is single-threaded by construction — Run forces
   the sequential driver whenever struct_learn is on. *)

let m_conflicts = Obs.Metrics.counter "atpg.learn.conflicts"
let m_clauses = Obs.Metrics.counter "atpg.learn.clauses"
let m_literals = Obs.Metrics.counter "atpg.learn.literals"
let m_hits = Obs.Metrics.counter "atpg.learn.hits"
let m_cube_hits = Obs.Metrics.counter "atpg.learn.cube_hits"
let m_cube_clauses = Obs.Metrics.counter "atpg.learn.cube_clauses"
let m_prefix = Obs.Metrics.counter "atpg.learn.prefix_reuses"

type literal = { key : int; frame : int; value : bool }

(* Keep clauses short and stores bounded: a long boundary almost never
   re-fires, and an unbounded store would turn consultation into the new
   hot loop.  Both caps are part of the deterministic search definition
   (they are the same on every machine). *)
let max_clause_literals = 24
let max_clauses_per_site = 64
let max_cube_clauses = 512

type site_store = {
  mutable clauses : literal array list; (* newest first *)
  seen : (string, unit) Hashtbl.t;      (* canonical clause signatures *)
}

type t = {
  circuit : Netlist.Node.t;
  key_of_node : int array;  (* node id -> stable tape-derived line key *)
  node_of_key : int array;
  sites : (int, site_store) Hashtbl.t;
  (* phase B *)
  failed_sig : (string, bool) Hashtbl.t;  (* cube signature -> complete *)
  mutable cube_clauses : Sim.Value3.t array list; (* generalized, newest first *)
  cube_seen : (string, unit) Hashtbl.t;
  proven : (string, Sim.Vectors.sequence) Hashtbl.t;
  (* scratch for conflict analysis, generation-stamped to avoid clears *)
  mutable stamp : int array;  (* [frame * n + node] *)
  mutable generation : int;
}

let create c =
  let n = Netlist.Node.num_nodes c in
  let tape = Sim.Tape.compile c in
  let key_of_node = Array.make n (-1) in
  let num_gates = tape.Sim.Tape.num_gates in
  (* gates first, in tape topological order (the PR 8 IR's [topo_slot]),
     then primary inputs, then state outputs: stable for any two
     structurally identical circuits, independent of node numbering *)
  Array.iteri
    (fun t s -> key_of_node.(tape.Sim.Tape.node_of_slot.(s)) <- t)
    tape.Sim.Tape.topo_slot;
  Array.iteri (fun i id -> key_of_node.(id) <- num_gates + i)
    c.Netlist.Node.pis;
  let num_pis = Netlist.Node.num_pis c in
  Array.iteri
    (fun j id -> key_of_node.(id) <- num_gates + num_pis + j)
    c.Netlist.Node.dffs;
  let node_of_key = Array.make n (-1) in
  Array.iteri
    (fun id k -> if k >= 0 then node_of_key.(k) <- id)
    key_of_node;
  {
    circuit = c;
    key_of_node;
    node_of_key;
    sites = Hashtbl.create 64;
    failed_sig = Hashtbl.create 256;
    cube_clauses = [];
    cube_seen = Hashtbl.create 64;
    proven = Hashtbl.create 256;
    stamp = [||];
    generation = 0;
  }

let key_of_node t id = t.key_of_node.(id)

let anchor (f : Fsim.Fault.t) =
  match f.Fsim.Fault.site with
  | Fsim.Fault.Stem id -> id
  | Fsim.Fault.Pin { gate; _ } -> gate

let site_store t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s = { clauses = []; seen = Hashtbl.create 16 } in
    Hashtbl.add t.sites site s;
    s

let clause_signature lits =
  String.concat ";"
    (List.map
       (fun l ->
         Printf.sprintf "%d.%d.%c" l.frame l.key (if l.value then '1' else '0'))
       (List.sort compare lits))

(* --- phase A: conflict analysis ------------------------------------------- *)

exception Reaches_po
exception Too_long

let analyze t ~site ~(stats : Types.stats) (fr : Frames.t) =
  let store = site_store t site in
  if List.length store.clauses >= max_clauses_per_site then None
  else begin
    let c = t.circuit in
    let n = Netlist.Node.num_nodes c in
    let k = fr.Frames.k in
    if Array.length t.stamp < k * n then t.stamp <- Array.make (k * n) 0;
    t.generation <- t.generation + 1;
    let gen = t.generation in
    let stamp = t.stamp in
    let walls = ref [] in
    let nwalls = ref 0 in
    let todo = Stack.create () in
    for f = 0 to k - 1 do
      Stack.push (f, site) todo
    done;
    match
      while not (Stack.is_empty todo) do
        let f, id = Stack.pop todo in
        let key = (f * n) + id in
        if stamp.(key) <> gen then begin
          stamp.(key) <- gen;
          stats.Types.work <- stats.Types.work + 1;
          let g = fr.Frames.good.(f).(id)
          and fv = fr.Frames.faulty.(f).(id) in
          match g, fv with
          | Sim.Value3.Zero, Sim.Value3.Zero | Sim.Value3.One, Sim.Value3.One
            ->
            (* a wall: determinate and equal in both machines, so (by
               monotone refinement) never a D below this node *)
            incr nwalls;
            if !nwalls > max_clause_literals then raise Too_long;
            walls :=
              {
                key = t.key_of_node.(id);
                frame = f;
                value = g = Sim.Value3.One;
              }
              :: !walls
          | _ ->
            (* potentially a D here in some refinement *)
            if fr.Frames.po_driver.(id) then raise Reaches_po;
            Array.iter
              (fun s ->
                match (Netlist.Node.node c s).Netlist.Node.kind with
                | Netlist.Node.Gate _ -> Stack.push (f, s) todo
                | Netlist.Node.Dff _ ->
                  if f + 1 < k then Stack.push (f + 1, s) todo
                | Netlist.Node.Pi _ -> ())
              c.Netlist.Node.fanouts.(id)
        end
      done
    with
    | () ->
      let lits = !walls in
      let sg = clause_signature lits in
      if Hashtbl.mem store.seen sg then None
      else begin
        Hashtbl.add store.seen sg ();
        let clause =
          Array.of_list (List.sort (fun a b -> compare a b) lits)
        in
        store.clauses <- clause :: store.clauses;
        stats.Types.learn_conflicts <- stats.Types.learn_conflicts + 1;
        stats.Types.learn_clauses <- stats.Types.learn_clauses + 1;
        stats.Types.learn_literals <-
          stats.Types.learn_literals + Array.length clause;
        Obs.Metrics.incr m_conflicts;
        Obs.Metrics.incr m_clauses;
        Obs.Metrics.add m_literals (Array.length clause);
        Some clause
      end
    | exception (Reaches_po | Too_long) -> None
  end

let clause_matches t (fr : Frames.t) clause =
  Array.for_all
    (fun l ->
      let id = t.node_of_key.(l.key) in
      let v = Sim.Value3.of_bool l.value in
      fr.Frames.good.(l.frame).(id) = v
      && fr.Frames.faulty.(l.frame).(id) = v)
    clause

let blocked t ~site ~(stats : Types.stats) (fr : Frames.t) =
  match Hashtbl.find_opt t.sites site with
  | None -> false
  | Some store ->
    let hit =
      List.exists
        (fun clause ->
          stats.Types.work <- stats.Types.work + 1;
          clause_matches t fr clause)
        store.clauses
    in
    if hit then begin
      stats.Types.learn_hits <- stats.Types.learn_hits + 1;
      Obs.Metrics.incr m_hits
    end;
    hit

(* --- phase B: generalized failed cubes ------------------------------------- *)

let cube_signature cube =
  String.init (Array.length cube) (fun j -> Sim.Value3.to_char cube.(j))

let failed_exact t sg = Hashtbl.find_opt t.failed_sig sg

let note_failed_cube t ~complete ~read ~(stats : Types.stats) cube =
  let sg = cube_signature cube in
  (match Hashtbl.find_opt t.failed_sig sg with
   | Some true -> ()
   | Some false | None -> Hashtbl.replace t.failed_sig sg complete);
  if complete && List.length t.cube_clauses < max_cube_clauses then begin
    (* the refutation only ever examined the read-set bits, so the
       restriction to them is refuted by the identical search — and a
       complete refutation is an unreachability proof, which transfers
       to every refinement of the restriction *)
    let general =
      Array.mapi (fun j v -> if read.(j) then v else Sim.Value3.X) cube
    in
    let gsg = cube_signature general in
    if not (Hashtbl.mem t.cube_seen gsg) then begin
      Hashtbl.add t.cube_seen gsg ();
      t.cube_clauses <- general :: t.cube_clauses;
      let lits =
        Array.fold_left
          (fun a v -> if v = Sim.Value3.X then a else a + 1)
          0 general
      in
      stats.Types.learn_clauses <- stats.Types.learn_clauses + 1;
      stats.Types.learn_literals <- stats.Types.learn_literals + lits;
      Obs.Metrics.incr m_cube_clauses;
      Obs.Metrics.add m_literals lits
    end
  end

let subsumes general cube =
  let ok = ref true in
  Array.iteri
    (fun j v ->
      if !ok && v <> Sim.Value3.X && cube.(j) <> v then ok := false)
    general;
  !ok

let cube_blocked t ~(stats : Types.stats) cube =
  let hit =
    List.exists
      (fun general ->
        stats.Types.work <- stats.Types.work + 1;
        subsumes general cube)
      t.cube_clauses
  in
  if hit then begin
    stats.Types.learn_cube_hits <- stats.Types.learn_cube_hits + 1;
    Obs.Metrics.incr m_cube_hits
  end;
  hit

let proven_prefix t sg =
  let r = Hashtbl.find_opt t.proven sg in
  if Option.is_some r then Obs.Metrics.incr m_prefix;
  r

let note_proven_prefix t sg seq = Hashtbl.replace t.proven sg seq

let sizes t =
  let clauses = ref 0 and literals = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun cl ->
          incr clauses;
          literals := !literals + Array.length cl)
        s.clauses)
    t.sites;
  (!clauses, !literals, List.length t.cube_clauses)
