(* Shared ATPG types: configuration, per-fault outcomes, work accounting.

   "CPU time" is reported in deterministic work units (gate evaluations plus
   weighted backtracks) so that the retimed/original ratios of the paper's
   tables are reproducible independent of the host machine. *)

type config = {
  max_frames_fwd : int;   (* forward time frames for propagation *)
  max_frames_bwd : int;   (* backward frames for state justification *)
  backtrack_limit : int;  (* per-fault PODEM backtracks *)
  work_limit : int;       (* per-fault gate-evaluation budget *)
  total_work_limit : int; (* whole-circuit budget; beyond it faults abort *)
  validate : bool;        (* confirm every generated test by fault simulation *)
  learn : bool;           (* SEST-style dynamic state learning *)
  struct_learn : bool;    (* conflict-driven structural clause learning *)
}

let default_config =
  {
    max_frames_fwd = 6;
    max_frames_bwd = 24;
    backtrack_limit = 800;
    work_limit = 1_200_000;
    total_work_limit = 250_000_000;
    validate = true;
    learn = false;
    struct_learn = false;
  }

(* SATPG_LEARN=1/true/on turns conflict-driven structural learning on for
   every engine run that builds its config through [scaled_config] (the
   CLI `--learn` flag is the explicit spelling of the same switch). *)
let env_struct_learn () =
  match Sys.getenv_opt "SATPG_LEARN" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

(* Multiply the three budget fields of [base] by [f].  A non-positive or
   non-finite scale is rejected outright — it would produce zero/negative
   budgets and an ATPG run that aborts every fault while claiming to have
   tried.  This is the one scaling expression shared by the SATPG_BUDGET
   environment path below and the per-request budgets of `satpg serve`,
   so a served budget and an env budget always fingerprint alike. *)
let scale_budgets base f =
  if (not (Float.is_finite f)) || f <= 0.0 then
    invalid_arg
      (Printf.sprintf "budget scale must be a positive finite number, got %g"
         f);
  let scale x =
    if x = max_int then x
    else int_of_float (float_of_int x *. f)
  in
  {
    base with
    backtrack_limit = scale base.backtrack_limit;
    work_limit = scale base.work_limit;
    total_work_limit = scale base.total_work_limit;
  }

(* Scale every budget by the SATPG_BUDGET environment variable (float).
   An unparsable value is loudly ignored (a silent fallback made typos
   look like default-budget runs). *)
let scaled_config ?(base = default_config) () =
  let base =
    if env_struct_learn () then { base with struct_learn = true } else base
  in
  match Sys.getenv_opt "SATPG_BUDGET" with
  | None | Some "" -> base
  | Some s ->
    (match float_of_string_opt s with
     | None ->
       Logs.warn (fun m ->
           m "SATPG_BUDGET=%S is not a number; budgets left unscaled" s);
       base
     | Some f ->
       (try scale_budgets base f
        with Invalid_argument _ ->
          invalid_arg
            (Printf.sprintf
               "SATPG_BUDGET must be a positive finite scale, got %s" s)))

type stats = {
  mutable work : int;            (* gate evaluations *)
  mutable backtracks : int;
  mutable decisions : int;
  mutable frames : int;          (* time frames expanded (Frames.create) *)
  states : (Sim.Statekey.t, unit) Hashtbl.t;
  (* distinct good states traversed, overflow-safe packed keys *)
  state_cubes : (string, unit) Hashtbl.t; (* justification targets (with X) *)
  (* conflict-driven structural learning (Learn); all zero when off *)
  mutable learn_conflicts : int; (* conflicts analyzed into clauses *)
  mutable learn_clauses : int;   (* blocking clauses stored *)
  mutable learn_literals : int;  (* literals across stored clauses *)
  mutable learn_hits : int;      (* phase-A prunes from clause matches *)
  mutable learn_cube_hits : int; (* phase-B prunes from failed-cube clauses *)
}

let new_stats () =
  {
    work = 0;
    backtracks = 0;
    decisions = 0;
    frames = 0;
    states = Hashtbl.create 256;
    state_cubes = Hashtbl.create 256;
    learn_conflicts = 0;
    learn_clauses = 0;
    learn_literals = 0;
    learn_hits = 0;
    learn_cube_hits = 0;
  }

let note_state stats code =
  if not (Hashtbl.mem stats.states code) then
    Hashtbl.add stats.states code ()

(* Combined work-unit metric: the "CPU seconds" stand-in. *)
let work_units stats = stats.work + (50 * stats.backtracks)

type fault_outcome =
  | Tested of Sim.Vectors.sequence  (* validated test sequence *)
  | Proved_redundant
  | Gave_up

type result = {
  faults : Fsim.Fault.t array;
  status : Fsim.Fault.status array;
  test_sets : Sim.Vectors.sequence list; (* in generation order *)
  stats : stats;
  fault_coverage : float;
  fault_efficiency : float;
  trajectory : (int * float) list;
  (* (work units, fault efficiency %) checkpoints, for Figure 3 *)
}

(* One-object JSON summary of a result (the `satpg atpg --json` payload),
   built on the obs JSON encoder.  [extra] fields are prepended — callers
   add circuit/engine/cache labels. *)
let result_to_json ?(extra = []) r =
  let count p =
    Array.fold_left (fun a s -> if p s then a + 1 else a) 0 r.status
  in
  Obs.Json.Obj
    (extra
    @ [
        ("faults", Obs.Json.Int (Array.length r.faults));
        ("coverage_percent", Obs.Json.Float r.fault_coverage);
        ("efficiency_percent", Obs.Json.Float r.fault_efficiency);
        ("work_units", Obs.Json.Int (work_units r.stats));
        ("work", Obs.Json.Int r.stats.work);
        ("backtracks", Obs.Json.Int r.stats.backtracks);
        ("decisions", Obs.Json.Int r.stats.decisions);
        ("frames_expanded", Obs.Json.Int r.stats.frames);
        ("states_seen", Obs.Json.Int (Hashtbl.length r.stats.states));
        ("state_cubes", Obs.Json.Int (Hashtbl.length r.stats.state_cubes));
        ("learn_conflicts", Obs.Json.Int r.stats.learn_conflicts);
        ("learn_clauses", Obs.Json.Int r.stats.learn_clauses);
        ("learn_literals", Obs.Json.Int r.stats.learn_literals);
        ("learn_hits", Obs.Json.Int r.stats.learn_hits);
        ("learn_cube_hits", Obs.Json.Int r.stats.learn_cube_hits);
        ( "status_counts",
          Obs.Json.Obj
            [
              ("detected", Obs.Json.Int (count (( = ) Fsim.Fault.Detected)));
              ("redundant", Obs.Json.Int (count (( = ) Fsim.Fault.Redundant)));
              ( "proved_untestable",
                Obs.Json.Int (count (( = ) Fsim.Fault.Proved_untestable)) );
              ("aborted", Obs.Json.Int (count (( = ) Fsim.Fault.Aborted)));
              ("untested", Obs.Json.Int (count (( = ) Fsim.Fault.Untested)));
            ] );
        ("test_sequences", Obs.Json.Int (List.length r.test_sets));
        ( "test_vectors",
          Obs.Json.Int
            (List.fold_left (fun a s -> a + List.length s) 0 r.test_sets) );
      ])

let summarize ?(trajectory = []) faults status test_sets stats =
  let total = Array.length faults in
  let count p = Array.fold_left (fun a s -> if p s then a + 1 else a) 0 status in
  let det = count (fun s -> s = Fsim.Fault.Detected) in
  let red = count (fun s -> s = Fsim.Fault.Redundant) in
  let proved = count (fun s -> s = Fsim.Fault.Proved_untestable) in
  {
    faults;
    status;
    test_sets;
    stats;
    fault_coverage = 100.0 *. float_of_int det /. float_of_int (max 1 total);
    (* efficiency counts every *resolved* fault: detected, proved
       redundant by an engine, or proved untestable by the static
       classifier — only engine give-ups and untried faults hurt it *)
    fault_efficiency =
      100.0 *. float_of_int (det + red + proved) /. float_of_int (max 1 total);
    trajectory;
  }
