(* Per-circuit ATPG driver shared by the HITEC- and SEST-style engines:

   1. random phase: a few random sequences are fault-simulated with fault
      dropping (every era's sequential ATPGs did this before deterministic
      search);
   2. deterministic phase: PODEM phase A + backward justification per
      remaining fault, each produced test validated by fault simulation
      (ground truth) and used to drop other faults.

   The driver records distinct good-machine states traversed (Table 6's
   instrumentation) and deterministic work units standing in for CPU time. *)

let find_reset_pi c =
  let r = ref None in
  Array.iteri
    (fun i id ->
      if String.equal (Netlist.Node.node c id).Netlist.Node.name "reset" then
        r := Some i)
    c.Netlist.Node.pis;
  !r

let random_sequences c ~seed ~count ~length =
  let rng = Random.State.make [| seed; 0xA7 |] in
  let npi = Netlist.Node.num_pis c in
  let reset = find_reset_pi c in
  List.init count (fun _ ->
      List.init length (fun _ ->
          let v = Sim.Vectors.random_vector rng npi in
          (match reset with
           | Some i -> v.(i) <- Random.State.int rng 24 = 0
           | None -> ());
          v))

let merge_stats ~into:(g : Types.stats) (f : Types.stats) =
  g.Types.work <- g.Types.work + f.Types.work;
  g.Types.backtracks <- g.Types.backtracks + f.Types.backtracks;
  g.Types.decisions <- g.Types.decisions + f.Types.decisions;
  g.Types.frames <- g.Types.frames + f.Types.frames;
  g.Types.learn_conflicts <- g.Types.learn_conflicts + f.Types.learn_conflicts;
  g.Types.learn_clauses <- g.Types.learn_clauses + f.Types.learn_clauses;
  g.Types.learn_literals <- g.Types.learn_literals + f.Types.learn_literals;
  g.Types.learn_hits <- g.Types.learn_hits + f.Types.learn_hits;
  g.Types.learn_cube_hits <- g.Types.learn_cube_hits + f.Types.learn_cube_hits;
  Hashtbl.iter
    (fun k () -> Hashtbl.replace g.Types.state_cubes k ())
    f.Types.state_cubes

let note_run_states stats (run : Fsim.Engine.run) =
  List.iter (fun code -> Types.note_state stats code) run.Fsim.Engine.good_states

(* Record the good-machine states visited by a sequence, each with the
   input prefix that reaches it — the justification directory. *)
let state_directory c seqs =
  let sim = Sim.Parallel.create c in
  let seen = Hashtbl.create 256 in
  let dir = ref [] in
  let note code prefix =
    if not (Hashtbl.mem seen code) then begin
      Hashtbl.add seen code ();
      dir := (code, prefix) :: !dir
    end
  in
  List.iter
    (fun seq ->
      Sim.Parallel.reset sim;
      let rec loop t past = function
        | [] -> ()
        | v :: rest ->
          ignore (Sim.Parallel.step_broadcast sim v);
          let code =
            Sim.Statekey.of_lane_words (Sim.Parallel.get_state_words sim)
              ~lane:0
          in
          let past = v :: past in
          note code (List.rev past);
          loop (t + 1) past rest
      in
      loop 0 [] seq)
    seqs;
  List.rev !dir

(* --- observability (shared with the Attest engine) ------------------------
   Event records are emitted only when a sink is installed; they carry the
   exact per-fault work/backtrack accounting, so summing the events of a run
   reproduces its aggregate work units to the unit (tested in test_obs). *)

let outcome_string = function
  | Types.Tested _ -> "tested"
  | Types.Proved_redundant -> "redundant"
  | Types.Gave_up -> "aborted"

let emit_fault_sim_event ~engine ~phase ~(stats : Types.stats) ~resolved
    ~vectors ~sim_cycles ~work dropped =
  if Obs.Events.enabled () then
    Obs.Events.emit
      [
        ("ev", Obs.Json.String "fault_sim");
        ("engine", Obs.Json.String engine);
        ("phase", Obs.Json.String phase);
        ("vectors", Obs.Json.Int vectors);
        ("sim_cycles", Obs.Json.Int sim_cycles);
        ("work", Obs.Json.Int work);
        ("backtracks", Obs.Json.Int 0);
        ("dropped", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) dropped));
        ("work_units_after", Obs.Json.Int (Types.work_units stats));
        ("resolved_after", Obs.Json.Int resolved);
      ]

let emit_fault_event c ~engine ~index ~(fault : Fsim.Fault.t)
    ~(fstats : Types.stats) ~outcome ~status ~drop_credit
    ~(stats : Types.stats) ~resolved =
  if Obs.Events.enabled () then
    Obs.Events.emit
      [
        ("ev", Obs.Json.String "fault");
        ("engine", Obs.Json.String engine);
        ("index", Obs.Json.Int index);
        ("fault", Obs.Json.String (Fsim.Fault.to_string c fault));
        ("site", Obs.Json.Int (Fsim.Fault.site_node fault.Fsim.Fault.site));
        ("stuck", Obs.Json.Bool fault.Fsim.Fault.stuck);
        ("outcome", Obs.Json.String outcome);
        ("status", Obs.Json.String (Fsim.Fault.status_to_string status));
        ("work", Obs.Json.Int fstats.Types.work);
        ("backtracks", Obs.Json.Int fstats.Types.backtracks);
        ("decisions", Obs.Json.Int fstats.Types.decisions);
        ("frames", Obs.Json.Int fstats.Types.frames);
        ("state_cubes", Obs.Json.Int (Hashtbl.length fstats.Types.state_cubes));
        ("learn_conflicts", Obs.Json.Int fstats.Types.learn_conflicts);
        ("learn_clauses", Obs.Json.Int fstats.Types.learn_clauses);
        ("learn_literals", Obs.Json.Int fstats.Types.learn_literals);
        ("learn_hits", Obs.Json.Int fstats.Types.learn_hits);
        ("learn_cube_hits", Obs.Json.Int fstats.Types.learn_cube_hits);
        ("drop_credit", Obs.Json.Int drop_credit);
        ("work_units_after", Obs.Json.Int (Types.work_units stats));
        ("resolved_after", Obs.Json.Int resolved);
      ]

(* Pre-engine pruning (shared with the Attest engine): mark every fault
   the static classifier proved untestable as resolved before any budget
   is spent.  [detected] doubles as the fault-sim skip array, the drop
   guard and the validation flag, and the deterministic loops only
   attempt [Untested] faults, so a pruned fault is never simulated,
   never dropped and never attempted — everything downstream behaves as
   if it had been dropped at cost zero.  Each pruned fault still gets a
   "fault" event so an event-stream replay reconstructs every status. *)
let apply_prune ?prune c ~engine ~faults ~status ~detected ~stats ~resolved =
  match prune with
  | None -> ()
  | Some p ->
    Obs.Trace.span "atpg.prune_untestable" (fun () ->
        Array.iteri
          (fun i fault ->
            if p fault then begin
              status.(i) <- Fsim.Fault.Proved_untestable;
              detected.(i) <- true;
              incr resolved;
              emit_fault_event c ~engine ~index:i ~fault
                ~fstats:(Types.new_stats ()) ~outcome:"proved_untestable"
                ~status:status.(i) ~drop_credit:0 ~stats ~resolved:!resolved
            end)
          faults)

(* Attempt one fault deterministically. *)
let attempt_fault ?directory ?guide ?slearn c fault cfg fstats learn =
  try
    let fr =
      Frames.create ~fault ?guide c ~frames:cfg.Types.max_frames_fwd
        ~stats:fstats
    in
    match Podem.phase_a ?slearn fr fault cfg fstats with
    | Podem.Detected ->
      let required = Array.copy fr.Frames.ps0 in
      (match
         Podem.justify ?directory ?guide ?slearn c ~required ~cfg ~stats:fstats
           ~learn
       with
       | Some prefix ->
         let forward =
           List.init fr.Frames.k (fun t ->
               Array.map
                 (fun v ->
                   match Sim.Value3.to_bool_opt v with
                   | Some b -> b
                   | None -> false)
                 fr.Frames.pi.(t))
         in
         Types.Tested (prefix @ forward)
       | None -> Types.Gave_up)
    | Podem.Exhausted { escape_seen = false } -> Types.Proved_redundant
    | Podem.Exhausted { escape_seen = true } -> Types.Gave_up
  with Podem.Out_of_budget -> Types.Gave_up

let generate ?(config = Types.scaled_config ()) ?(seed = 1)
    ?(random_sequences_count = 2) ?(random_sequence_length = 120) ?engine
    ?guide ?prune c =
  let cfg = config in
  let engine =
    match engine with
    | Some e -> e
    | None -> if cfg.Types.learn then "sest" else "hitec"
  in
  let faults = Fsim.Collapse.list c in
  let n = Array.length faults in
  let status = Array.make n Fsim.Fault.Untested in
  let detected = Array.make n false in
  let stats = Types.new_stats () in
  let test_sets = ref [] in
  let trajectory = ref [] in
  let resolved = ref 0 in
  let checkpoint () =
    trajectory :=
      (Types.work_units stats,
       100.0 *. float_of_int !resolved /. float_of_int (max 1 n))
      :: !trajectory
  in
  apply_prune ?prune c ~engine ~faults ~status ~detected ~stats ~resolved;
  if Option.is_some prune then checkpoint ();
  let learn = if cfg.Types.learn then Some (Podem.new_learn_state ()) else None in
  let learn_state =
    match learn with Some l -> l | None -> Podem.new_learn_state ()
  in
  (* conflict-driven structural learning: one clause store for the whole
     run, shared across faults (phase-A clauses per anchor site, phase-B
     failed-cube clauses globally) *)
  let slearn = if cfg.Types.struct_learn then Some (Learn.create c) else None in
  (* Fault-simulate [seq] with dropping; returns the newly dropped fault
     indices (ascending).  Emits one "fault_sim" event per call. *)
  let apply_fault_sim ~phase seq =
    let run = Fsim.Engine.simulate ~skip:detected c faults seq in
    let work = List.length seq * Netlist.Node.num_gates c in
    stats.Types.work <- stats.Types.work + work;
    note_run_states stats run;
    let dropped = ref [] in
    Array.iteri
      (fun i d ->
        if d && not detected.(i) then begin
          detected.(i) <- true;
          status.(i) <- Fsim.Fault.Detected;
          incr resolved;
          dropped := i :: !dropped
        end)
      run.Fsim.Engine.detected;
    let dropped = List.rev !dropped in
    Obs.Trace.set_time (Types.work_units stats);
    emit_fault_sim_event ~engine ~phase ~stats ~resolved:!resolved
      ~vectors:(List.length seq) ~sim_cycles:run.Fsim.Engine.sim_cycles ~work
      dropped;
    dropped
  in
  (* random phase *)
  let random_seqs =
    random_sequences c ~seed ~count:random_sequences_count
      ~length:random_sequence_length
  in
  let directory =
    Obs.Trace.span "atpg.random_phase" (fun () ->
        List.iter
          (fun seq ->
            let dropped = apply_fault_sim ~phase:"random" seq in
            if dropped <> [] then test_sets := seq :: !test_sets;
            checkpoint ())
          random_seqs;
        let directory = state_directory c random_seqs in
        let dir_work =
          List.fold_left (fun a s -> a + List.length s) 0 random_seqs
          * Netlist.Node.num_gates c
        in
        stats.Types.work <- stats.Types.work + dir_work;
        Obs.Trace.set_time (Types.work_units stats);
        if Obs.Events.enabled () then
          Obs.Events.emit
            [
              ("ev", Obs.Json.String "state_directory");
              ("engine", Obs.Json.String engine);
              ("work", Obs.Json.Int dir_work);
              ("backtracks", Obs.Json.Int 0);
              ("work_units_after", Obs.Json.Int (Types.work_units stats));
              ("resolved_after", Obs.Json.Int !resolved);
            ];
        directory)
  in
  (* deterministic phase

     Split per fault into an [attempt] (the PODEM/justification search —
     for [learn = None] a pure function of the fault, so it can run on
     any domain) and a [commit] (everything that reads or writes shared
     driver state: stats merge, validation fault-sim with dropping,
     status/test-set updates, events).  The sequential path runs
     attempt-then-commit per fault; the parallel path speculates a window
     of attempts across domains and commits them in index order,
     re-checking status and budget at commit time — a speculated fault
     that a committed test has meanwhile dropped is discarded delta and
     all, so the driver's output is bit-identical to the sequential
     loop's at any job count. *)
  let total_budget = cfg.Types.total_work_limit in
  let attempt fault =
    let fstats = Types.new_stats () in
    let learn_arg = if cfg.Types.learn then Some learn_state else None in
    let outcome =
      attempt_fault ~directory ?guide ?slearn c fault cfg fstats learn_arg
    in
    (outcome, fstats)
  in
  let commit_fault i fault (outcome, (fstats : Types.stats)) =
    merge_stats ~into:stats fstats;
    Obs.Trace.set_time (Types.work_units stats);
    let drop_credit = ref 0 in
    (match outcome with
    | Types.Tested seq ->
      if cfg.Types.validate then begin
        let before = detected.(i) in
        let dropped = apply_fault_sim ~phase:"validate" seq in
        drop_credit :=
          List.length dropped - (if List.mem i dropped then 1 else 0);
        if dropped <> [] then test_sets := seq :: !test_sets;
        if (not before) && not detected.(i) then
          (* the deterministic engine was fooled by its
             approximations; ground truth says undetected *)
          status.(i) <- Fsim.Fault.Aborted
      end
      else begin
        detected.(i) <- true;
        status.(i) <- Fsim.Fault.Detected;
        test_sets := seq :: !test_sets
      end
    | Types.Proved_redundant ->
      status.(i) <- Fsim.Fault.Redundant;
      incr resolved
    | Types.Gave_up -> status.(i) <- Fsim.Fault.Aborted);
    checkpoint ();
    emit_fault_event c ~engine ~index:i ~fault ~fstats
      ~outcome:(outcome_string outcome) ~status:status.(i)
      ~drop_credit:!drop_credit ~stats ~resolved:!resolved
  in
  let deterministic_sequential () =
    try
      Array.iteri
        (fun i fault ->
          if status.(i) = Fsim.Fault.Untested then begin
            if Types.work_units stats > total_budget then raise Exit;
            if Obs.Trace.enabled () then
              Obs.Trace.span
                ~args:[ ("fault", Obs.Json.String (Fsim.Fault.to_string c fault)) ]
                "atpg.fault"
                (fun () -> commit_fault i fault (attempt fault))
            else commit_fault i fault (attempt fault)
          end)
        faults
    with Exit -> ()
  in
  let deterministic_parallel () =
    let window_size = max 2 (2 * Exec.Pool.jobs ()) in
    let cursor = ref 0 in
    try
      while !cursor < n do
        (* Next window of still-untested faults, in index order. *)
        let window = ref [] in
        let len = ref 0 in
        let j = ref !cursor in
        while !j < n && !len < window_size do
          if status.(!j) = Fsim.Fault.Untested then begin
            window := !j :: !window;
            incr len
          end;
          incr j
        done;
        cursor := !j;
        let window = Array.of_list (List.rev !window) in
        if Array.length window > 0 then begin
          let ds =
            Exec.Pool.run_deferred (Array.length window) (fun k ->
                attempt faults.(window.(k)))
          in
          Array.iteri
            (fun k i ->
              (* Re-check at commit time: an earlier commit in this
                 window may have dropped fault [i] (its deferred is then
                 discarded, side effects and all) or pushed the run over
                 budget — exactly the conditions the sequential loop
                 tests before attempting [i]. *)
              if status.(i) = Fsim.Fault.Untested then begin
                if Types.work_units stats > total_budget then raise Exit;
                commit_fault i faults.(i) (Exec.Pool.commit ds.(k))
              end)
            window
        end
      done
    with Exit -> ()
  in
  Obs.Trace.span "atpg.deterministic_phase" (fun () ->
      (* The SEST engine and the structural-learning store are both one
         shared mutable state threaded through every attempt, and tracing
         wants per-fault spans — all inherently sequential, so speculation
         is for the learn-free, untraced configuration (the Table 2-4
         workhorse). *)
      if Exec.Pool.jobs () > 1 && (not cfg.Types.learn)
         && (not cfg.Types.struct_learn)
         && not (Obs.Trace.enabled ())
      then deterministic_parallel ()
      else deterministic_sequential ());
  (* anything still untested ran out of global budget *)
  Array.iteri
    (fun i s -> if s = Fsim.Fault.Untested then status.(i) <- Fsim.Fault.Aborted)
    status;
  checkpoint ();
  Types.summarize ~trajectory:(List.rev !trajectory) faults status
    (List.rev !test_sets) stats
