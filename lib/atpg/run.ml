(* Per-circuit ATPG driver shared by the HITEC- and SEST-style engines:

   1. random phase: a few random sequences are fault-simulated with fault
      dropping (every era's sequential ATPGs did this before deterministic
      search);
   2. deterministic phase: PODEM phase A + backward justification per
      remaining fault, each produced test validated by fault simulation
      (ground truth) and used to drop other faults.

   The driver records distinct good-machine states traversed (Table 6's
   instrumentation) and deterministic work units standing in for CPU time. *)

let find_reset_pi c =
  let r = ref None in
  Array.iteri
    (fun i id ->
      if String.equal (Netlist.Node.node c id).Netlist.Node.name "reset" then
        r := Some i)
    c.Netlist.Node.pis;
  !r

let random_sequences c ~seed ~count ~length =
  let rng = Random.State.make [| seed; 0xA7 |] in
  let npi = Netlist.Node.num_pis c in
  let reset = find_reset_pi c in
  List.init count (fun _ ->
      List.init length (fun _ ->
          let v = Sim.Vectors.random_vector rng npi in
          (match reset with
           | Some i -> v.(i) <- Random.State.int rng 24 = 0
           | None -> ());
          v))

let merge_stats ~into:(g : Types.stats) (f : Types.stats) =
  g.Types.work <- g.Types.work + f.Types.work;
  g.Types.backtracks <- g.Types.backtracks + f.Types.backtracks;
  g.Types.decisions <- g.Types.decisions + f.Types.decisions;
  Hashtbl.iter
    (fun k () -> Hashtbl.replace g.Types.state_cubes k ())
    f.Types.state_cubes

let note_run_states stats (run : Fsim.Engine.run) =
  List.iter (fun code -> Types.note_state stats code) run.Fsim.Engine.good_states

(* Record the good-machine states visited by a sequence, each with the
   input prefix that reaches it — the justification directory. *)
let state_directory c seqs =
  let sim = Sim.Parallel.create c in
  let seen = Hashtbl.create 256 in
  let dir = ref [] in
  let note code prefix =
    if not (Hashtbl.mem seen code) then begin
      Hashtbl.add seen code ();
      dir := (code, prefix) :: !dir
    end
  in
  List.iter
    (fun seq ->
      Sim.Parallel.reset sim;
      let rec loop t past = function
        | [] -> ()
        | v :: rest ->
          ignore (Sim.Parallel.step_broadcast sim v);
          let words = Sim.Parallel.get_state_words sim in
          let code = ref 0 in
          Array.iteri
            (fun i w -> if w land 1 <> 0 then code := !code lor (1 lsl i))
            words;
          let past = v :: past in
          note !code (List.rev past);
          loop (t + 1) past rest
      in
      loop 0 [] seq)
    seqs;
  List.rev !dir

(* Attempt one fault deterministically. *)
let attempt_fault ?directory ?guide c fault cfg fstats learn =
  try
    let fr =
      Frames.create ~fault ?guide c ~frames:cfg.Types.max_frames_fwd
        ~stats:fstats
    in
    match Podem.phase_a fr fault cfg fstats with
    | Podem.Detected ->
      let required = Array.copy fr.Frames.ps0 in
      (match
         Podem.justify ?directory ?guide c ~required ~cfg ~stats:fstats ~learn
       with
       | Some prefix ->
         let forward =
           List.init fr.Frames.k (fun t ->
               Array.map
                 (fun v ->
                   match Sim.Value3.to_bool_opt v with
                   | Some b -> b
                   | None -> false)
                 fr.Frames.pi.(t))
         in
         Types.Tested (prefix @ forward)
       | None -> Types.Gave_up)
    | Podem.Exhausted { escape_seen = false } -> Types.Proved_redundant
    | Podem.Exhausted { escape_seen = true } -> Types.Gave_up
  with Podem.Out_of_budget -> Types.Gave_up

let generate ?(config = Types.scaled_config ()) ?(seed = 1)
    ?(random_sequences_count = 2) ?(random_sequence_length = 120) ?guide c =
  let cfg = config in
  let faults = Fsim.Collapse.list c in
  let n = Array.length faults in
  let status = Array.make n Fsim.Fault.Untested in
  let detected = Array.make n false in
  let stats = Types.new_stats () in
  let test_sets = ref [] in
  let trajectory = ref [] in
  let resolved = ref 0 in
  let checkpoint () =
    trajectory :=
      (Types.work_units stats,
       100.0 *. float_of_int !resolved /. float_of_int (max 1 n))
      :: !trajectory
  in
  let learn = if cfg.Types.learn then Some (Podem.new_learn_state ()) else None in
  let learn_state =
    match learn with Some l -> l | None -> Podem.new_learn_state ()
  in
  let apply_fault_sim seq =
    let run = Fsim.Engine.simulate ~skip:detected c faults seq in
    stats.Types.work <-
      stats.Types.work
      + (List.length seq * Netlist.Node.num_gates c);
    note_run_states stats run;
    let newly = ref 0 in
    Array.iteri
      (fun i d ->
        if d && not detected.(i) then begin
          detected.(i) <- true;
          status.(i) <- Fsim.Fault.Detected;
          incr newly;
          incr resolved
        end)
      run.Fsim.Engine.detected;
    !newly
  in
  (* random phase *)
  let random_seqs =
    random_sequences c ~seed ~count:random_sequences_count
      ~length:random_sequence_length
  in
  List.iter
    (fun seq ->
      let newly = apply_fault_sim seq in
      if newly > 0 then test_sets := seq :: !test_sets;
      checkpoint ())
    random_seqs;
  let directory = state_directory c random_seqs in
  stats.Types.work <-
    stats.Types.work
    + (List.fold_left (fun a s -> a + List.length s) 0 random_seqs
       * Netlist.Node.num_gates c);
  (* deterministic phase *)
  let total_budget = cfg.Types.total_work_limit in
  (try
     Array.iteri
       (fun i fault ->
         if status.(i) = Fsim.Fault.Untested then begin
           if Types.work_units stats > total_budget then raise Exit;
           let fstats = Types.new_stats () in
           let learn_arg = if cfg.Types.learn then Some learn_state else None in
           let outcome =
             attempt_fault ~directory ?guide c fault cfg fstats learn_arg
           in
           merge_stats ~into:stats fstats;
           (match outcome with
           | Types.Tested seq ->
             if cfg.Types.validate then begin
               let before = detected.(i) in
               let newly = apply_fault_sim seq in
               if newly > 0 then test_sets := seq :: !test_sets;
               if (not before) && not detected.(i) then
                 (* the deterministic engine was fooled by its
                    approximations; ground truth says undetected *)
                 status.(i) <- Fsim.Fault.Aborted
             end
             else begin
               detected.(i) <- true;
               status.(i) <- Fsim.Fault.Detected;
               test_sets := seq :: !test_sets
             end
           | Types.Proved_redundant ->
             status.(i) <- Fsim.Fault.Redundant;
             incr resolved
           | Types.Gave_up -> status.(i) <- Fsim.Fault.Aborted);
           checkpoint ()
         end)
       faults
   with Exit -> ());
  (* anything still untested ran out of global budget *)
  Array.iteri
    (fun i s -> if s = Fsim.Fault.Untested then status.(i) <- Fsim.Fault.Aborted)
    status;
  checkpoint ();
  Types.summarize ~trajectory:(List.rev !trajectory) faults status
    (List.rev !test_sets) stats
