(** Shared ATPG types: engine configuration, budgets, work accounting and
    per-circuit results.

    "CPU time" is reported in deterministic {e work units} — gate
    evaluations plus weighted backtracks — so the retimed/original ratios
    of the paper's tables are reproducible independent of the host. *)

type config = {
  max_frames_fwd : int;   (** forward time frames for fault propagation *)
  max_frames_bwd : int;   (** backward frames for state justification *)
  backtrack_limit : int;  (** per-fault PODEM backtracks *)
  work_limit : int;       (** per-fault gate-evaluation budget *)
  total_work_limit : int; (** whole-circuit budget; beyond it faults abort *)
  validate : bool;        (** confirm every test by fault simulation *)
  learn : bool;           (** SEST-style dynamic state learning *)
  struct_learn : bool;
  (** conflict-driven structural clause learning ({!module:Learn}): derive
      blocking clauses from phase-A conflicts and generalized failed cubes
      from complete phase-B refutations, and consult them before branching *)
}

val default_config : config

(** Is [SATPG_LEARN] set to a truthy value (1/true/on/yes)? *)
val env_struct_learn : unit -> bool

(** [scaled_config ?base ()] multiplies every budget of [base] by the
    [SATPG_BUDGET] environment variable (a float), when set, and turns
    [struct_learn] on when [SATPG_LEARN] is truthy.  An unparsable budget
    logs a warning and leaves the budgets unscaled.
    @raise Invalid_argument on a non-positive or non-finite scale. *)
val scaled_config : ?base:config -> unit -> config

(** [scale_budgets base f] multiplies the [backtrack_limit], [work_limit]
    and [total_work_limit] of [base] by [f] — the same arithmetic
    {!scaled_config} applies to [SATPG_BUDGET], exposed directly so
    long-lived callers (`satpg serve`) can honor a per-request budget
    without going through the environment.
    @raise Invalid_argument on a non-positive or non-finite scale. *)
val scale_budgets : config -> float -> config

type stats = {
  mutable work : int;        (** gate evaluations *)
  mutable backtracks : int;
  mutable decisions : int;
  mutable frames : int;      (** time frames expanded ({!Frames.create}) *)
  states : (Sim.Statekey.t, unit) Hashtbl.t;
  (** distinct good-machine states traversed (Table 6 instrumentation),
      keyed by overflow-safe packed state keys *)
  state_cubes : (string, unit) Hashtbl.t;
  (** justification requirement cubes encountered (with X positions) *)
  mutable learn_conflicts : int;
  (** conflicts whose analysis produced a stored blocking clause *)
  mutable learn_clauses : int;   (** blocking clauses stored *)
  mutable learn_literals : int;  (** literals across stored clauses *)
  mutable learn_hits : int;      (** phase-A prunes from clause matches *)
  mutable learn_cube_hits : int;
  (** phase-B prunes from generalized failed-cube clauses *)
}

val new_stats : unit -> stats
val note_state : stats -> Sim.Statekey.t -> unit

(** The CPU-seconds stand-in: work + 50 * backtracks. *)
val work_units : stats -> int

type fault_outcome =
  | Tested of Sim.Vectors.sequence  (** candidate test, power-up onward *)
  | Proved_redundant
  | Gave_up

type result = {
  faults : Fsim.Fault.t array;
  status : Fsim.Fault.status array;
  test_sets : Sim.Vectors.sequence list;
  (** each sequence is applied from power-up *)
  stats : stats;
  fault_coverage : float;     (** % detected *)
  fault_efficiency : float;   (** % detected or proven redundant *)
  trajectory : (int * float) list;
  (** (work units, fault efficiency %) checkpoints — Figure 3's curves *)
}

(** One-object JSON summary of a result (the [satpg atpg --json] payload):
    coverage, efficiency, work accounting, states and per-status fault
    counts.  [extra] fields are prepended (circuit/engine/cache labels). *)
val result_to_json : ?extra:(string * Obs.Json.t) list -> result -> Obs.Json.t

val summarize :
  ?trajectory:(int * float) list ->
  Fsim.Fault.t array ->
  Fsim.Fault.status array ->
  Sim.Vectors.sequence list ->
  stats ->
  result
