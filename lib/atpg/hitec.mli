(** HITEC-style engine: time-frame PODEM with backward state
    justification and fault-simulation dropping, {e without} cross-fault
    state learning (compare {!Sest}). *)

(** The engine's default configuration, scaled by [SATPG_BUDGET]. *)
val config : unit -> Types.config

val generate :
  ?config:Types.config ->
  ?seed:int ->
  ?guide:int array * int array ->
  ?prune:(Fsim.Fault.t -> bool) ->
  Netlist.Node.t ->
  Types.result
